#include "index/inverted_grid_index.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

struct IndexBundle {
  std::unique_ptr<TempFile> file;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<InvertedGridIndex> index;
};

IndexBundle BuildIndex(const Dataset& dataset, uint32_t grid = 0) {
  IndexBundle bundle;
  bundle.file = std::make_unique<TempFile>("invgrid");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  InvertedGridIndex::Options options;
  options.grid_resolution = grid;
  bundle.index =
      InvertedGridIndex::Build(dataset, bundle.pool.get(), options).value();
  return bundle;
}

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 40;
  config.seed = seed;
  return GenerateDataset(config);
}

TEST(InvertedGridIndexTest, EmptyDataset) {
  Dataset dataset;
  IndexBundle bundle = BuildIndex(dataset);
  SpatialKeywordQuery q;
  q.doc = KeywordSet{1};
  q.alpha = 0.5;
  EXPECT_TRUE(bundle.index->TopK(q).value().empty());
  EXPECT_EQ(bundle.index->RankOfScore(q, 0.0).value(), 1u);
}

TEST(InvertedGridIndexTest, UnknownQueryTermsAreHarmless) {
  Dataset dataset;
  dataset.Add(Point{0.5, 0.5}, KeywordSet{0});
  dataset.Add(Point{0.1, 0.1}, KeywordSet{1});
  IndexBundle bundle = BuildIndex(dataset);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet{0, 999999};  // the second term never existed
  q.k = 2;
  q.alpha = 0.5;
  const auto top = bundle.index->TopK(q).value();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);
}

class InvertedGridSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, uint32_t>> {
};

TEST_P(InvertedGridSweep, TopKMatchesBruteForce) {
  const auto [k, alpha, grid] = GetParam();
  const Dataset dataset = SmallDataset(350, 97);
  IndexBundle bundle = BuildIndex(dataset, grid);
  Rng rng(500 + k + grid);
  for (int q_iter = 0; q_iter < 5; ++q_iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset
                .object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
                .doc;
    q.k = k;
    q.alpha = alpha;
    const auto expected = BruteForceTopK(dataset, q);
    const auto actual = bundle.index->TopK(q).value();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "position " << i;
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvertedGridSweep,
    ::testing::Combine(::testing::Values(1u, 5u, 25u, 400u),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(0u, 1u, 7u)));

TEST(InvertedGridIndexTest, RankOfScoreMatchesBruteForce) {
  const Dataset dataset = SmallDataset(300, 98);
  IndexBundle bundle = BuildIndex(dataset);
  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.6};
  q.doc = dataset.object(13).doc;
  q.alpha = 0.5;
  for (ObjectId id : std::vector<ObjectId>{0, 77, 150, 299}) {
    const double score = Score(dataset.object(id), q, dataset.diagonal());
    EXPECT_EQ(bundle.index->RankOfScore(q, score).value(),
              BruteForceRank(dataset, q, id));
  }
}

TEST(InvertedGridIndexTest, ReopenFinalizedIndex) {
  const Dataset dataset = SmallDataset(120, 99);
  TempFile file("invgrid_reopen");
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    InvertedGridIndex::Options options;
    auto index = InvertedGridIndex::Build(dataset, &pool, options).value();
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto index = InvertedGridIndex::Open(&pool).value();
  EXPECT_EQ(index->num_objects(), dataset.size());
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = dataset.object(3).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto expected = BruteForceTopK(dataset, q);
  const auto actual = index->TopK(q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

TEST(InvertedGridIndexTest, OpenRejectsWrongMagic) {
  TempFile file("invgrid_magic");
  {
    auto pager = Pager::Create(file.path()).value();
    const PageId id = pager->AllocatePages(1);
    std::vector<uint8_t> junk(pager->page_size(), 0x11);
    WSK_CHECK(pager->WritePage(id, junk.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  EXPECT_FALSE(InvertedGridIndex::Open(&pool).ok());
}

TEST(InvertedGridIndexTest, BuildRequiresFreshFile) {
  TempFile file("invgrid_fresh");
  auto pager = Pager::Create(file.path()).value();
  pager->AllocatePages(1);
  BufferPool pool(pager.get(), 1u << 20);
  Dataset dataset;
  dataset.Add(Point{0, 0}, KeywordSet{1});
  InvertedGridIndex::Options options;
  EXPECT_EQ(InvertedGridIndex::Build(dataset, &pool, options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InvertedGridIndexTest, KeywordSelectiveQueriesReadFewPages) {
  // A rare term should touch far fewer pages than a common one.
  Dataset dataset;
  Rng rng(3);
  const TermId common = 0;
  const TermId rare = 1;
  for (int i = 0; i < 2000; ++i) {
    std::vector<TermId> terms{common};
    if (i == 500) terms.push_back(rare);
    dataset.Add(Point{rng.NextDouble(), rng.NextDouble()},
                KeywordSet(std::move(terms)));
  }
  IndexBundle bundle = BuildIndex(dataset);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.k = 1;
  q.alpha = 0.2;  // textual-dominated

  ASSERT_TRUE(bundle.pool->InvalidateAll().ok());
  bundle.pager->io_stats().Reset();
  q.doc = KeywordSet{rare};
  (void)bundle.index->TopK(q).value();
  const uint64_t rare_io = bundle.pager->io_stats().physical_reads();

  ASSERT_TRUE(bundle.pool->InvalidateAll().ok());
  bundle.pager->io_stats().Reset();
  q.doc = KeywordSet{common};
  (void)bundle.index->TopK(q).value();
  const uint64_t common_io = bundle.pager->io_stats().physical_reads();

  EXPECT_LT(rare_io, common_io / 2);
}

}  // namespace
}  // namespace wsk
