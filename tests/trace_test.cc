#include "observability/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace wsk {
namespace {

// Structural well-formedness: balanced braces/brackets outside strings.
// A real JSON parser is overkill for asserting the exporter never emits
// unbalanced output; Perfetto-loading is checked by hand per release.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    ASSERT_GE(braces, 0) << "unbalanced '}' at offset " << i;
    ASSERT_GE(brackets, 0) << "unbalanced ']' at offset " << i;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceRecorderTest, SpansAccumulateStageTotalsAndEvents) {
  TraceRecorder recorder;
  { TraceSpan span(&recorder, TraceStage::kEnumeration); }
  { TraceSpan span(&recorder, TraceStage::kEnumeration); }
  { TraceSpan span(&recorder, TraceStage::kRankQuery); }
  EXPECT_EQ(recorder.StageCount(TraceStage::kEnumeration), 2u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kRankQuery), 1u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kQuery), 0u);
  EXPECT_EQ(recorder.num_events(), 3u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].stage, TraceStage::kEnumeration);
  EXPECT_EQ(events[2].stage, TraceStage::kRankQuery);
  EXPECT_FALSE(events[0].instant);
}

TEST(TraceRecorderTest, NullRecorderSpanIsANoOp) {
  // Must not crash or record anywhere; this is the disabled hot path.
  TraceSpan span(nullptr, TraceStage::kQuery);
}

TEST(TraceRecorderTest, CountersAccumulate) {
  TraceRecorder recorder;
  recorder.Add(TraceCounter::kNodesVisited);
  recorder.Add(TraceCounter::kNodesVisited, 9);
  recorder.Add(TraceCounter::kKernelInvocations, 3);
  EXPECT_EQ(recorder.counter(TraceCounter::kNodesVisited), 10u);
  EXPECT_EQ(recorder.counter(TraceCounter::kKernelInvocations), 3u);
  EXPECT_EQ(recorder.counter(TraceCounter::kBatches), 0u);
}

TEST(TraceRecorderTest, SpanTimesAreOrderedAndWithinRecorderClock) {
  TraceRecorder recorder;
  const uint64_t before = recorder.NowUs();
  {
    TraceSpan span(&recorder, TraceStage::kTopK);
    // Ensure a measurable (>= 1 us) duration on coarse clocks.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const uint64_t after = recorder.NowUs();
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].start_us, before);
  EXPECT_GT(events[0].dur_us, 0u);
  EXPECT_LE(events[0].start_us + events[0].dur_us, after);
  EXPECT_EQ(recorder.StageTotalUs(TraceStage::kTopK), events[0].dur_us);
}

TEST(TraceRecorderTest, BufferFullDropsInsteadOfWrapping) {
  TraceRecorder recorder(/*event_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(&recorder, TraceStage::kCandidateEval);
  }
  EXPECT_EQ(recorder.num_events(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  // Aggregates are not subject to the event-buffer bound.
  EXPECT_EQ(recorder.StageCount(TraceStage::kCandidateEval), 10u);
}

TEST(TraceRecorderTest, ZeroCapacityKeepsAggregatesOnly) {
  TraceRecorder recorder(/*event_capacity=*/0);
  { TraceSpan span(&recorder, TraceStage::kBatch); }
  recorder.Annotate(TraceStage::kExplain, "note", 7);
  recorder.Add(TraceCounter::kBatches);
  EXPECT_EQ(recorder.num_events(), 0u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kBatch), 1u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kExplain), 1u);
  EXPECT_EQ(recorder.counter(TraceCounter::kBatches), 1u);
  // The JSON still carries the counters instant.
  const std::string json = recorder.ToChromeTraceJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"batches\":1"), std::string::npos);
}

TEST(TraceRecorderTest, AnnotationsBecomeInstantEvents) {
  TraceRecorder recorder;
  recorder.Annotate(TraceStage::kExplain, "object 42 is \"far\"", 42);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].arg, 42);
  EXPECT_EQ(events[0].detail, "object 42 is \"far\"");

  const std::string json = recorder.ToChromeTraceJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":42"), std::string::npos);
  // The quote inside the detail must come out escaped.
  EXPECT_NE(json.find("\\\"far\\\""), std::string::npos);
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder recorder;
  { TraceSpan span(&recorder, TraceStage::kQuery); }
  recorder.Add(TraceCounter::kNodesSeen, 5);
  const std::string json = recorder.ToChromeTraceJson();
  ExpectBalancedJson(json);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"wsk\""), std::string::npos);
  // Counters travel as a final global instant.
  EXPECT_NE(json.find("\"name\":\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes_seen\":5"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TraceRecorderTest, WriteChromeTraceRoundTrips) {
  TraceRecorder recorder;
  { TraceSpan span(&recorder, TraceStage::kInitialRank); }
  const std::string path =
      ::testing::TempDir() + "/wsk_trace_test_out.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), recorder.ToChromeTraceJson());
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, WriteChromeTraceReportsOpenFailure) {
  TraceRecorder recorder;
  const Status s = recorder.WriteChromeTrace("/nonexistent-dir/trace.json");
  EXPECT_FALSE(s.ok());
}

TEST(TraceRecorderTest, SummaryListsActiveStagesAndAllCounters) {
  TraceRecorder recorder;
  { TraceSpan span(&recorder, TraceStage::kLeafScoring); }
  recorder.Add(TraceCounter::kLeafObjectsScored, 12);
  const std::string summary = recorder.Summary();
  EXPECT_NE(summary.find("leaf_scoring"), std::string::npos);
  // Stages with no spans are omitted; counters always print.
  EXPECT_EQ(summary.find("bound_tightening"), std::string::npos);
  EXPECT_NE(summary.find("leaf_objects_scored"), std::string::npos);
  EXPECT_NE(summary.find("12"), std::string::npos);
}

TEST(TraceRecorderTest, StageAndCounterNamesAreStable) {
  EXPECT_STREQ(TraceStageName(TraceStage::kQuery), "query");
  EXPECT_STREQ(TraceStageName(TraceStage::kBoundTightening),
               "bound_tightening");
  EXPECT_STREQ(TraceCounterName(TraceCounter::kCandidatesEnumerated),
               "candidates_enumerated");
  EXPECT_STREQ(TraceCounterName(TraceCounter::kCellsVisited),
               "cells_visited");
}

TEST(TraceRecorderTest, ConcurrentWritersAreLossless) {
  TraceRecorder recorder(/*event_capacity=*/1 << 12);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&recorder, TraceStage::kCandidateEval);
        recorder.Add(TraceCounter::kCandidatesEnumerated);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(recorder.counter(TraceCounter::kCandidatesEnumerated), kTotal);
  EXPECT_EQ(recorder.StageCount(TraceStage::kCandidateEval), kTotal);
  EXPECT_EQ(recorder.num_events() + recorder.dropped_events(), kTotal);
  ExpectBalancedJson(recorder.ToChromeTraceJson());
}

}  // namespace
}  // namespace wsk
