// Unit tests for the live-update segment subsystem: DeltaSegment
// visibility, FrozenSegment tombstones, SegmentManager snapshots and
// compaction, and SegmentedEngine's query surface (docs/SEGMENTS.md).
#include <algorithm>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/query.h"
#include "segment/delta_segment.h"
#include "segment/frozen_segment.h"
#include "segment/segmented_engine.h"

namespace wsk {
namespace {

SpatialObject MakeObject(ObjectId id, double x, double y,
                         std::initializer_list<TermId> terms) {
  SpatialObject o;
  o.id = id;
  o.loc = Point{x, y};
  std::vector<TermId> sorted(terms);
  std::sort(sorted.begin(), sorted.end());
  o.doc = KeywordSet::FromSorted(std::move(sorted));
  return o;
}

TEST(DeltaSegmentTest, VisibilityRule) {
  DeltaSegment delta(8);
  const uint32_t a = delta.Add(MakeObject(1, 0, 0, {0}), /*add_seq=*/1);
  delta.Add(MakeObject(2, 1, 1, {0, 1}), /*add_seq=*/2);

  EXPECT_EQ(delta.FindVisible(1, 0), nullptr);  // not yet added at seq 0
  ASSERT_NE(delta.FindVisible(1, 1), nullptr);
  EXPECT_EQ(delta.CountVisible(1), 1u);
  EXPECT_EQ(delta.CountVisible(2), 2u);

  delta.MarkDeleted(a, /*del_seq=*/3);
  ASSERT_NE(delta.FindVisible(1, 2), nullptr);  // old snapshots keep seeing it
  EXPECT_EQ(delta.FindVisible(1, 3), nullptr);
  EXPECT_EQ(delta.CountVisible(3), 1u);
}

TEST(DeltaSegmentTest, SupersededVersionResolution) {
  DeltaSegment delta(8);
  const uint32_t v1 = delta.Add(MakeObject(7, 0, 0, {0}), /*add_seq=*/1);
  delta.MarkDeleted(v1, /*del_seq=*/2);
  delta.Add(MakeObject(7, 5, 5, {1}), /*add_seq=*/2);  // same mutation

  const SpatialObject* old_version = delta.FindVisible(7, 1);
  ASSERT_NE(old_version, nullptr);
  EXPECT_EQ(old_version->loc.x, 0.0);
  const SpatialObject* new_version = delta.FindVisible(7, 2);
  ASSERT_NE(new_version, nullptr);
  EXPECT_EQ(new_version->loc.x, 5.0);
  EXPECT_EQ(delta.CountVisible(2), 1u);  // never two versions at once
}

TEST(DeltaSegmentTest, TermPostings) {
  DeltaSegment delta(8);
  delta.Add(MakeObject(1, 0, 0, {3}), 1);
  const uint32_t b = delta.Add(MakeObject(2, 1, 1, {3, 4}), 2);
  EXPECT_EQ(delta.VisibleDocFrequency(3, 2), 2u);
  EXPECT_EQ(delta.VisibleDocFrequency(4, 2), 1u);
  EXPECT_EQ(delta.VisibleDocFrequency(9, 2), 0u);
  delta.MarkDeleted(b, 3);
  EXPECT_EQ(delta.VisibleDocFrequency(3, 3), 1u);
}

TEST(FrozenSegmentTest, ShadowSemantics) {
  std::vector<SpatialObject> objects = {
      MakeObject(0, 0, 0, {0}),
      MakeObject(1, 1, 0, {1}),
      MakeObject(2, 0, 1, {0, 1}),
  };
  RetiredIoAccumulator retired;
  StatusOr<std::shared_ptr<FrozenSegment>> built = FrozenSegment::Build(
      objects, /*diagonal=*/2.0, FrozenSegment::Options{}, nullptr, &retired);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::shared_ptr<FrozenSegment> segment = std::move(built).value();

  EXPECT_EQ(segment->num_objects(), 3u);
  ASSERT_NE(segment->Find(1), nullptr);
  EXPECT_EQ(segment->Find(9), nullptr);
  EXPECT_TRUE(segment->VisibleAt(1, 0));

  EXPECT_TRUE(segment->Shadow(1, /*del_seq=*/5));
  EXPECT_FALSE(segment->Shadow(1, 7));  // earlier tombstone wins
  EXPECT_FALSE(segment->Shadow(9, 5));  // absent id
  EXPECT_EQ(segment->shadow_total(), 1u);

  EXPECT_TRUE(segment->VisibleAt(1, 4));   // before the tombstone
  EXPECT_FALSE(segment->VisibleAt(1, 5));  // at and after
  EXPECT_EQ(segment->ShadowedAt(4), 0u);
  EXPECT_EQ(segment->ShadowedAt(5), 1u);

  // Retirement folds I/O into the accumulator exactly once.
  segment.reset();
  EXPECT_EQ(retired.segments_retired.load(), 1u);
  EXPECT_GT(retired.setr_physical.load() + retired.setr_logical.load(), 0u);
}

// Shared fixture state: a small clustered dataset with an interned query.
struct LiveFixture {
  SegmentedEngine::Config config;
  std::unique_ptr<SegmentedEngine> engine;
  SpatialKeywordQuery query;

  explicit LiveFixture(uint32_t delta_capacity = 4,
                       bool auto_merge = false) {
    Dataset seed;
    for (int i = 0; i < 30; ++i) {
      const double x = (i % 6) * 1.0;
      const double y = (i / 6) * 1.0;
      std::vector<std::string> kw = {"base", "kw" + std::to_string(i % 5)};
      seed.Add(Point{x, y}, kw);
    }
    query.loc = Point{2.0, 2.0};
    query.doc = seed.vocabulary().InternAll({"base", "kw1"});
    query.k = 5;
    query.alpha = 0.5;

    config.node_capacity = 8;
    config.delta_capacity = delta_capacity;
    config.auto_merge = auto_merge;
    StatusOr<std::unique_ptr<SegmentedEngine>> built =
        SegmentedEngine::Build(seed, config);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    engine = std::move(built).value();
  }

  // Reference dataset mirroring the engine's current logical state.
  Dataset Rebuild() const {
    Dataset reference;
    reference.vocabulary() = engine->vocabulary().CloneDictionary();
    reference.OverrideDiagonal(engine->diagonal());
    SegmentManager::Snapshot snap = engine->GetSnapshot();
    const SnapshotStore store(&engine->vocabulary(), snap);
    // Collect ids from all layers, then add in ascending id order.
    std::vector<const SpatialObject*> objects;
    for (const auto& frozen : snap.view->frozen) {
      for (const SpatialObject& o : frozen->objects()) {
        if (frozen->VisibleAt(o.id, snap.seq)) objects.push_back(&o);
      }
    }
    const auto collect = [&objects](const DeltaSegment::Entry& e) {
      objects.push_back(&e.object);
    };
    for (const auto& sealed : snap.view->sealed) {
      sealed->ForEachVisible(snap.seq, collect);
    }
    snap.view->active->ForEachVisible(snap.seq, collect);
    std::sort(objects.begin(), objects.end(),
              [](const SpatialObject* a, const SpatialObject* b) {
                return a->id < b->id;
              });
    for (const SpatialObject* o : objects) {
      reference.AddWithId(o->id, o->loc, o->doc);
    }
    return reference;
  }
};

void ExpectTopKEqual(const std::vector<ScoredObject>& got,
                     const std::vector<ScoredObject>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;  // bit exact
  }
}

TEST(SegmentedEngineTest, SeededStateMatchesBruteForce) {
  LiveFixture fx;
  StatusOr<std::vector<ScoredObject>> got = fx.engine->TopK(fx.query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Dataset reference = fx.Rebuild();
  ExpectTopKEqual(got.value(), BruteForceTopK(reference, fx.query));
  EXPECT_EQ(fx.engine->segment_counters().live_objects, 30u);
}

TEST(SegmentedEngineTest, InsertUpdateDeleteVisibility) {
  LiveFixture fx;
  // Insert right at the query location with both query keywords: must win.
  StatusOr<ObjectId> id =
      fx.engine->Insert(Point{2.0, 2.0}, {"base", "kw1"});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  StatusOr<std::vector<ScoredObject>> topk = fx.engine->TopK(fx.query);
  ASSERT_TRUE(topk.ok());
  ASSERT_FALSE(topk.value().empty());
  EXPECT_EQ(topk.value().front().id, id.value());

  // Update it far away with unrelated keywords: drops out of the top-k.
  ASSERT_TRUE(fx.engine->Update(id.value(), Point{100.0, 100.0}, {"elsewhere"})
                  .ok());
  topk = fx.engine->TopK(fx.query);
  ASSERT_TRUE(topk.ok());
  for (const ScoredObject& r : topk.value()) EXPECT_NE(r.id, id.value());

  // Rank still resolves the updated version; delete removes it entirely.
  EXPECT_TRUE(fx.engine->Rank(fx.query, id.value()).ok());
  ASSERT_TRUE(fx.engine->Delete(id.value()).ok());
  EXPECT_FALSE(fx.engine->Rank(fx.query, id.value()).ok());
  EXPECT_FALSE(fx.engine->Delete(id.value()).ok());  // already gone

  // After all that churn the engine still matches a from-scratch rebuild.
  Dataset reference = fx.Rebuild();
  topk = fx.engine->TopK(fx.query);
  ASSERT_TRUE(topk.ok());
  ExpectTopKEqual(topk.value(), BruteForceTopK(reference, fx.query));
}

TEST(SegmentedEngineTest, SnapshotIsolation) {
  LiveFixture fx;
  SegmentManager::Snapshot before = fx.engine->GetSnapshot();
  const SnapshotStore store_before(&fx.engine->vocabulary(), before);
  const size_t count_before = store_before.num_objects();

  ASSERT_TRUE(fx.engine->Insert(Point{0.5, 0.5}, {"base"}).ok());
  ASSERT_TRUE(fx.engine->Delete(0).ok());

  // The old snapshot is immune to both mutations.
  const SnapshotStore store_again(&fx.engine->vocabulary(), before);
  EXPECT_EQ(store_again.num_objects(), count_before);
  EXPECT_NE(store_again.FindObject(0), nullptr);

  SegmentManager::Snapshot after = fx.engine->GetSnapshot();
  const SnapshotStore store_after(&fx.engine->vocabulary(), after);
  EXPECT_EQ(store_after.num_objects(), count_before);  // +1 -1
  EXPECT_EQ(store_after.FindObject(0), nullptr);
}

TEST(SegmentedEngineTest, ForceMergeCompactsAndPreservesAnswers) {
  LiveFixture fx(/*delta_capacity=*/4, /*auto_merge=*/false);
  for (int i = 0; i < 10; ++i) {  // forces several rotations
    ASSERT_TRUE(
        fx.engine->Insert(Point{1.0 + 0.1 * i, 2.0}, {"base", "kw1"}).ok());
  }
  ASSERT_TRUE(fx.engine->Delete(3).ok());
  StatusOr<std::vector<ScoredObject>> before = fx.engine->TopK(fx.query);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(fx.engine->ForceMerge().ok());
  SegmentCountersSnapshot counters = fx.engine->segment_counters();
  EXPECT_TRUE(counters.valid);
  EXPECT_EQ(counters.frozen_segments, 1u);
  EXPECT_EQ(counters.delta_objects, 0u);
  EXPECT_GE(counters.merges, 1u);
  EXPECT_EQ(counters.live_objects, 30u + 10u - 1u);

  StatusOr<std::vector<ScoredObject>> after = fx.engine->TopK(fx.query);
  ASSERT_TRUE(after.ok());
  ExpectTopKEqual(after.value(), before.value());

  // The compacted tree is bit-identical to a from-scratch build: compare a
  // why-not answer against a static engine over the rebuilt reference.
  Dataset reference = fx.Rebuild();
  WhyNotEngine::Config cfg;
  cfg.node_capacity = 8;
  StatusOr<std::unique_ptr<WhyNotEngine>> static_engine =
      WhyNotEngine::Build(&reference, cfg);
  ASSERT_TRUE(static_engine.ok());
  const std::vector<ObjectId> missing = {after.value().back().id};
  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    StatusOr<WhyNotResult> live =
        fx.engine->Answer(algorithm, fx.query, missing, options);
    StatusOr<WhyNotResult> expect =
        static_engine.value()->Answer(algorithm, fx.query, missing, options);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    EXPECT_EQ(live.value().refined.penalty, expect.value().refined.penalty);
    EXPECT_TRUE(live.value().refined.doc == expect.value().refined.doc);
    EXPECT_EQ(live.value().refined.k, expect.value().refined.k);
  }
}

TEST(SegmentedEngineTest, TombstoneOnlyStateStillCompacts) {
  LiveFixture fx;
  ASSERT_TRUE(fx.engine->Delete(5).ok());  // only a frozen tombstone
  ASSERT_TRUE(fx.engine->ForceMerge().ok());
  SegmentManager::Snapshot snap = fx.engine->GetSnapshot();
  ASSERT_EQ(snap.view->frozen.size(), 1u);
  // The rebuilt frozen segment excludes the deleted object physically.
  EXPECT_EQ(snap.view->frozen[0]->num_objects(), 29u);
  EXPECT_EQ(snap.view->frozen[0]->shadow_total(), 0u);
}

TEST(SegmentedEngineTest, IoCountersMonotoneAcrossMerge) {
  LiveFixture fx;
  ASSERT_TRUE(fx.engine->TopK(fx.query).ok());
  const BackendIoSnapshot before = fx.engine->io_snapshot();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fx.engine->Insert(Point{0.1 * i, 0.2}, {"base"}).ok());
  }
  ASSERT_TRUE(fx.engine->ForceMerge().ok());
  ASSERT_TRUE(fx.engine->TopK(fx.query).ok());
  const BackendIoSnapshot after = fx.engine->io_snapshot();
  EXPECT_GE(after.setr_physical, before.setr_physical);
  EXPECT_GE(after.setr_logical, before.setr_logical);
  EXPECT_GE(after.kcr_physical, before.kcr_physical);
  EXPECT_GE(after.kcr_logical, before.kcr_logical);
}

TEST(SegmentedEngineTest, DatasetVersionAdvancesPerMutation) {
  LiveFixture fx;
  const uint64_t v0 = fx.engine->dataset_version();
  ASSERT_TRUE(fx.engine->Insert(Point{0, 0}, {"base"}).ok());
  const uint64_t v1 = fx.engine->dataset_version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(fx.engine->Delete(1).ok());
  EXPECT_GT(fx.engine->dataset_version(), v1);
  // Merges are not mutations: the version is the logical state's identity.
  const uint64_t v2 = fx.engine->dataset_version();
  ASSERT_TRUE(fx.engine->ForceMerge().ok());
  EXPECT_EQ(fx.engine->dataset_version(), v2);
}

TEST(SegmentedEngineTest, VocabularyTracksLogicalCorpus) {
  LiveFixture fx;
  StatusOr<ObjectId> id = fx.engine->Insert(Point{1, 1}, {"fresh", "base"});
  ASSERT_TRUE(id.ok());
  Dataset reference = fx.Rebuild();  // re-records every visible document
  EXPECT_EQ(fx.engine->vocabulary().DocumentFrequencies(),
            reference.vocabulary().DocumentFrequencies());
  ASSERT_TRUE(fx.engine->Delete(id.value()).ok());
  Dataset reference2 = fx.Rebuild();
  EXPECT_EQ(fx.engine->vocabulary().DocumentFrequencies(),
            reference2.vocabulary().DocumentFrequencies());
}

TEST(SegmentedEngineTest, ReadOnlyBackendRejectsMutations) {
  Dataset seed;
  seed.Add(Point{0, 0}, std::vector<std::string>{"a"});
  WhyNotEngine::Config cfg;
  StatusOr<std::unique_ptr<WhyNotEngine>> engine =
      WhyNotEngine::Build(&seed, cfg);
  ASSERT_TRUE(engine.ok());
  const QueryBackend* backend = engine.value().get();
  EXPECT_EQ(backend->Insert(Point{1, 1}, {"b"}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(backend->Delete(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(backend->segment_counters().valid);
  EXPECT_EQ(backend->dataset_version(), 0u);
}

}  // namespace
}  // namespace wsk
