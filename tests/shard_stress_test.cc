// Coordinator stress test (docs/SHARDING.md), in the `stress` CTest label
// so CI reruns it under TSan: concurrent top-k / why-not queries fan out
// over live shards while mutation threads stream routed inserts, updates,
// and deletes through the same QueryService. Exercises the scatter-gather
// read path racing per-shard rotations and merges, the shared-vocabulary
// intern path, summary updates, owner-map churn, and the validating result
// cache under concurrent invalidation.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "service/query_service.h"
#include "shard/shard_coordinator.h"

namespace wsk {
namespace {

TEST(ShardStressTest, ConcurrentQueriesAndRoutedMutations) {
  GeneratorConfig gen;
  gen.num_objects = 300;
  gen.vocab_size = 50;
  gen.num_clusters = 6;
  gen.cluster_stddev = 0.02;
  gen.uniform_fraction = 0.1;
  gen.seed = 60601;
  Dataset dataset = GenerateDataset(gen);

  ShardCoordinator::Config config;
  config.num_shards = 3;
  config.live = true;
  config.node_capacity = 16;
  config.delta_capacity = 48;  // force rotations + merges under load
  config.auto_merge = true;
  auto coordinator = ShardCoordinator::Build(dataset, config).value();

  QueryServiceConfig service_config;
  service_config.num_workers = 4;
  service_config.max_queue = 0;
  service_config.max_inflight = 0;
  service_config.cache_capacity = 256;
  QueryService service(coordinator.get(), service_config);

  // Query workload: localized probes anchored at seed objects.
  std::vector<SpatialKeywordQuery> queries;
  for (int i = 0; i < 24; ++i) {
    const SpatialObject& anchor = dataset.objects()[i * 12];
    SpatialKeywordQuery q;
    q.loc = anchor.loc;
    q.doc = anchor.doc;
    q.k = 5;
    q.alpha = 0.5;
    queries.push_back(q);
  }
  std::vector<std::string> terms;
  for (TermId t = 0; t < dataset.vocabulary().num_terms(); ++t) {
    terms.push_back(dataset.vocabulary().TermString(t));
  }

  constexpr int kMutators = 2;
  constexpr int kMutationsPerThread = 120;
  std::atomic<uint64_t> mutation_failures{0};
  std::vector<std::thread> mutators;
  for (int m = 0; m < kMutators; ++m) {
    mutators.emplace_back([&, m] {
      // Each thread only updates/deletes ids it inserted itself, so every
      // mutation is expected to succeed — any non-ok status is a bug.
      std::vector<ObjectId> mine;
      uint64_t state = 0x9e3779b97f4a7c15ull * (m + 1);
      for (int i = 0; i < kMutationsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const double x = static_cast<double>((state >> 16) & 0x3ff) / 1023.0;
        const double y = static_cast<double>((state >> 32) & 0x3ff) / 1023.0;
        const std::vector<std::string> keywords = {
            terms[state % terms.size()],
            terms[(state >> 20) % terms.size()]};
        const int kind = static_cast<int>(state % 4);
        if (kind < 2 || mine.size() < 4) {
          const auto inserted = service.Insert(Point{x, y}, keywords);
          if (inserted.ok()) {
            mine.push_back(inserted.value().id);
          } else {
            ++mutation_failures;
          }
        } else if (kind == 2) {
          const ObjectId id = mine[state % mine.size()];
          if (!service.Update(id, Point{x, y}, keywords).ok()) {
            ++mutation_failures;
          }
        } else {
          const size_t pos = state % mine.size();
          const ObjectId id = mine[pos];
          mine.erase(mine.begin() + pos);
          if (!service.Delete(id).ok()) ++mutation_failures;
        }
      }
    });
  }

  // Queries race the mutators: plain repeats (cache churn) plus a why-not
  // sprinkled in every round.
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
  std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>> wf;
  for (int round = 0; round < 8; ++round) {
    for (const SpatialKeywordQuery& q : queries) {
      tf.push_back(service.SubmitTopK(q));
    }
    SpatialKeywordQuery narrow = queries[round % queries.size()];
    narrow.k = 2;
    wf.push_back(service.SubmitWhyNot(
        WhyNotAlgorithm::kKcrBased, narrow,
        {dataset.objects()[(round * 31) % dataset.objects().size()].id},
        WhyNotOptions{}));
  }
  for (auto& f : tf) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (auto& f : wf) {
    const auto r = f.get();
    // A why-not target deleted mid-flight surfaces NotFound; anything
    // else must succeed.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
          << r.status().ToString();
    }
  }
  for (std::thread& t : mutators) t.join();
  EXPECT_EQ(mutation_failures.load(), 0u);

  // Post-race coherence: counters aggregate, every query was accounted,
  // and the owner map agrees with the shard object totals.
  const ShardCountersSnapshot counters = coordinator->shard_counters();
  ASSERT_TRUE(counters.valid);
  EXPECT_EQ(counters.num_shards, 3u);
  EXPECT_GT(counters.queries, 0u);
  EXPECT_GT(counters.shards_visited, 0u);
  uint64_t mutations = 0;
  for (uint64_t m : counters.per_shard_mutations) mutations += m;
  EXPECT_EQ(mutations, static_cast<uint64_t>(kMutators) *
                           static_cast<uint64_t>(kMutationsPerThread));
  uint64_t objects = 0;
  for (uint64_t o : counters.per_shard_objects) objects += o;
  // Seed objects plus net inserts: every surviving id has exactly one
  // owner shard, and a follow-up query still answers.
  EXPECT_GT(objects, 0u);
  const auto final_topk = service.TopK(queries[0]);
  ASSERT_TRUE(final_topk.ok()) << final_topk.status().ToString();
}

}  // namespace
}  // namespace wsk
