// Node-format / read-mode differential (docs/STORAGE.md "v2 node format &
// mmap"): the four engine configurations {v1, v2} x {pread, mmap} must be
// observationally identical. The compact v2 records store the same doubles
// and term ids bit for bit, and the mmap path hands back the same bytes the
// buffered path copies, so TopK and every why-not algorithm must agree
// exactly — ids, scores, refined keywords, ranks, and penalties, with no
// tolerance. Runs over the same seeded scenario generator as the oracle
// suite; failures print the seed-bearing scenario description.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "storage/node_codec_v2.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 120;

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

struct FormatConfig {
  const char* name;
  uint8_t format;
  bool mmap;
};

constexpr FormatConfig kConfigs[] = {
    {"v1+pread", kNodeFormatV1, false},  // the paper baseline
    {"v1+mmap", kNodeFormatV1, true},
    {"v2+pread", kNodeFormatV2, false},
    {"v2+mmap", kNodeFormatV2, true},  // the frozen-segment default
};

class FormatDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FormatDifferentialTest, AllFormatsBitIdentical) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, {});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  std::vector<std::unique_ptr<WhyNotEngine>> engines;
  for (const FormatConfig& fc : kConfigs) {
    WhyNotEngine::Config config;
    config.node_capacity = 16;  // multi-level trees at scenario scale
    config.node_format = fc.format;
    config.mmap_reads = fc.mmap;
    StatusOr<std::unique_ptr<WhyNotEngine>> built =
        WhyNotEngine::Build(&scenario->dataset, config);
    ASSERT_TRUE(built.ok()) << fc.name << ": " << built.status().ToString();
    engines.push_back(std::move(built).value());
  }

  // TopK: the v1+pread stream is the reference.
  const auto baseline_top =
      engines[0]->TopK(scenario->query).value();
  for (size_t c = 1; c < engines.size(); ++c) {
    SCOPED_TRACE(kConfigs[c].name);
    const auto top = engines[c]->TopK(scenario->query).value();
    ASSERT_EQ(top.size(), baseline_top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].id, baseline_top[i].id);
      EXPECT_EQ(top[i].score, baseline_top[i].score);  // bit-exact
    }
  }

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    StatusOr<WhyNotResult> baseline = engines[0]->Answer(
        algorithm, scenario->query, scenario->missing, scenario->options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    for (size_t c = 1; c < engines.size(); ++c) {
      SCOPED_TRACE(kConfigs[c].name);
      StatusOr<WhyNotResult> got = engines[c]->Answer(
          algorithm, scenario->query, scenario->missing, scenario->options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value().already_in_result,
                baseline.value().already_in_result);
      const RefinedQuery& a = got.value().refined;
      const RefinedQuery& b = baseline.value().refined;
      EXPECT_EQ(a.doc, b.doc)
          << a.doc.ToString() << " vs " << b.doc.ToString();
      EXPECT_EQ(a.k, b.k);
      EXPECT_EQ(a.rank, b.rank);
      EXPECT_EQ(a.edit_distance, b.edit_distance);
      EXPECT_EQ(a.penalty, b.penalty);  // exact, no tolerance
    }
  }

  // Mapped engines actually used the map for their reads.
  EXPECT_EQ(engines[0]->io_snapshot().setr_mapped, 0u);
  EXPECT_GT(engines[3]->io_snapshot().setr_mapped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatDifferentialTest,
                         ::testing::Range(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
