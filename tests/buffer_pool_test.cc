#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("bufpool");
    pager_ = Pager::Create(file_->path(), 256).value();
  }

  // Writes a page whose first byte is `tag` directly through the pager.
  PageId MakePage(uint8_t tag) {
    const PageId id = pager_->AllocatePages(1);
    std::vector<uint8_t> buf(pager_->page_size(), tag);
    WSK_CHECK(pager_->WritePage(id, buf.data()).ok());
    return id;
  }

  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(BufferPoolTest, FrameCountFromCapacity) {
  BufferPool pool(pager_.get(), 256 * 8);
  EXPECT_EQ(pool.num_frames(), 8u);
  BufferPool tiny(pager_.get(), 1);  // rounds up to one frame
  EXPECT_EQ(tiny.num_frames(), 1u);
}

TEST_F(BufferPoolTest, FetchReadsAndCaches) {
  const PageId id = MakePage(7);
  BufferPool pool(pager_.get(), 256 * 4);
  pager_->io_stats().Reset();
  {
    auto h = pool.Fetch(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value().data()[0], 7);
  }
  {
    auto h = pool.Fetch(id);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pager_->io_stats().physical_reads(), 1u);
  EXPECT_EQ(pager_->io_stats().logical_reads(), 2u);
}

TEST_F(BufferPoolTest, LruEvictsColdest) {
  const PageId a = MakePage(1);
  const PageId b = MakePage(2);
  const PageId c = MakePage(3);
  BufferPool pool(pager_.get(), 256 * 2);  // two frames
  (void)pool.Fetch(a);
  (void)pool.Fetch(b);
  // Touch a so b becomes coldest.
  (void)pool.Fetch(a);
  (void)pool.Fetch(c);  // evicts b
  pager_->io_stats().Reset();
  (void)pool.Fetch(a);  // hit
  EXPECT_EQ(pager_->io_stats().physical_reads(), 0u);
  (void)pool.Fetch(b);  // miss: was evicted
  EXPECT_EQ(pager_->io_stats().physical_reads(), 1u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  const PageId a = MakePage(1);
  const PageId b = MakePage(2);
  BufferPool pool(pager_.get(), 256);  // one frame
  auto h = pool.Fetch(a);
  ASSERT_TRUE(h.ok());
  auto blocked = pool.Fetch(b);
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  h.value().Release();
  EXPECT_TRUE(pool.Fetch(b).ok());
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  const PageId a = MakePage(1);
  const PageId b = MakePage(2);
  BufferPool pool(pager_.get(), 256);  // one frame
  {
    auto h = pool.Fetch(a);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = 42;
    h.value().MarkDirty();
  }
  (void)pool.Fetch(b);  // evicts a, must flush it
  std::vector<uint8_t> buf(pager_->page_size());
  ASSERT_TRUE(pager_->ReadPage(a, buf.data()).ok());
  EXPECT_EQ(buf[0], 42);
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  const PageId a = MakePage(1);
  BufferPool pool(pager_.get(), 256 * 4);
  {
    auto h = pool.Fetch(a);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = 99;
    h.value().MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint8_t> buf(pager_->page_size());
  ASSERT_TRUE(pager_->ReadPage(a, buf.data()).ok());
  EXPECT_EQ(buf[0], 99);
}

TEST_F(BufferPoolTest, NewPageAllocatesZeroedDirtyFrame) {
  BufferPool pool(pager_.get(), 256 * 4);
  PageId id;
  {
    auto h = pool.NewPage();
    ASSERT_TRUE(h.ok());
    id = h.value().page_id();
    EXPECT_EQ(h.value().data()[5], 0);
    h.value().data()[5] = 77;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint8_t> buf(pager_->page_size());
  ASSERT_TRUE(pager_->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(buf[5], 77);
}

TEST_F(BufferPoolTest, InvalidateAllDropsCleanAndDirtyFrames) {
  const PageId a = MakePage(1);
  BufferPool pool(pager_.get(), 256 * 4);
  {
    auto h = pool.Fetch(a);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = 50;
    h.value().MarkDirty();
  }
  ASSERT_TRUE(pool.InvalidateAll().ok());
  pager_->io_stats().Reset();
  auto h = pool.Fetch(a);  // must be a physical read again
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().data()[0], 50);  // dirty data survived the drop
  EXPECT_EQ(pager_->io_stats().physical_reads(), 1u);
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  const PageId a = MakePage(1);
  BufferPool pool(pager_.get(), 256);  // single frame
  auto h = pool.Fetch(a);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(h.value());
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(h.value().valid());
  moved.Release();
  // The pin is gone exactly once: a new fetch can evict.
  EXPECT_TRUE(pool.Fetch(MakePage(2)).ok());
}

TEST_F(BufferPoolTest, ReadErrorPropagates) {
  const PageId a = MakePage(1);
  BufferPool pool(pager_.get(), 256 * 2);
  pager_->set_read_fault_hook(
      [](PageId) { return Status::IoError("injected"); });
  auto h = pool.Fetch(a);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kIoError);
  pager_->set_read_fault_hook(nullptr);
  // The frame grabbed for the failed read was returned to the free list.
  EXPECT_TRUE(pool.Fetch(a).ok());
}

}  // namespace
}  // namespace wsk
