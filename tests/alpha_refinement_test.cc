#include "core/alpha_refinement.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

// Dense-grid reference: evaluate the penalty at many alphas and keep the
// best. The exact sweep must never be worse.
double GridReference(const Dataset& dataset,
                     const SpatialKeywordQuery& original,
                     const std::vector<ObjectId>& missing, double lambda,
                     uint32_t initial_rank) {
  const double normalizer = std::max(original.alpha, 1.0 - original.alpha);
  double best = lambda;  // basic refinement
  for (int i = 1; i < 999; ++i) {
    SpatialKeywordQuery q = original;
    q.alpha = i / 1000.0;
    if (q.alpha < 0.01 || q.alpha > 0.99) continue;
    const uint32_t rank = testing::BruteForceSetRank(dataset, q, missing);
    const double dk =
        rank > original.k ? static_cast<double>(rank - original.k) : 0.0;
    const double penalty =
        lambda * dk / (initial_rank - original.k) +
        (1.0 - lambda) * std::abs(q.alpha - original.alpha) / normalizer;
    best = std::min(best, penalty);
  }
  return best;
}

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 30;
  config.seed = seed;
  return GenerateDataset(config);
}

TEST(AlphaRefinementTest, AlreadyInResult) {
  const Dataset dataset = SmallDataset(100, 1);
  SpatialKeywordQuery q;
  q.loc = dataset.object(5).loc;
  q.doc = dataset.object(5).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto result = RefineAlpha(dataset, q, {5}, 0.5).value();
  EXPECT_TRUE(result.already_in_result);
  EXPECT_DOUBLE_EQ(result.penalty, 0.0);
}

TEST(AlphaRefinementTest, RefinedQueryRevivesMissing) {
  const Dataset dataset = SmallDataset(200, 2);
  Rng rng(2);
  for (int iter = 0; iter < 5; ++iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset.object(static_cast<ObjectId>(
                                rng.NextUint64(dataset.size())))
                .doc;
    q.k = 5;
    q.alpha = 0.5;
    // The 20th object of the ranking is missing.
    std::vector<ScoredObject> top = BruteForceTopK(dataset, [&] {
      SpatialKeywordQuery big = q;
      big.k = 20;
      return big;
    }());
    const ObjectId missing = top.back().id;
    const auto result = RefineAlpha(dataset, q, {missing}, 0.5).value();
    if (result.already_in_result) continue;
    SpatialKeywordQuery refined = q;
    refined.alpha = result.alpha;
    EXPECT_LE(testing::BruteForceSetRank(dataset, refined, {missing}),
              result.k);
    EXPECT_LE(result.penalty, 0.5 + 1e-12);  // never worse than basic
  }
}

TEST(AlphaRefinementTest, MatchesDenseGridReference) {
  const Dataset dataset = SmallDataset(150, 3);
  Rng rng(3);
  for (double lambda : {0.2, 0.5, 0.8}) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset.object(7).doc;
    q.k = 5;
    q.alpha = 0.5;
    SpatialKeywordQuery probe = q;
    probe.k = 25;
    const ObjectId missing = BruteForceTopK(dataset, probe).back().id;
    const auto result = RefineAlpha(dataset, q, {missing}, lambda).value();
    if (result.already_in_result) continue;
    const double reference = GridReference(dataset, q, {missing}, lambda,
                                           result.initial_rank);
    // The sweep is exact; the grid can only be equal or slightly worse.
    EXPECT_LE(result.penalty, reference + 1e-9) << "lambda=" << lambda;
  }
}

TEST(AlphaRefinementTest, SpatialMismatchFixedByRaisingAlpha) {
  // The missing object is textually disjoint from the query but nearby;
  // pushing alpha toward the spatial side revives it.
  Dataset dataset;
  const TermId kw = dataset.vocabulary().Intern("query");
  const TermId other = dataset.vocabulary().Intern("other");
  dataset.Add(Point{0.30, 0.0}, KeywordSet{kw});    // far but matching
  dataset.Add(Point{0.02, 0.0}, KeywordSet{other}); // near, no match
  dataset.Add(Point{1.00, 0.0}, KeywordSet{other}); // diagonal anchor
  SpatialKeywordQuery q;
  q.loc = Point{0.0, 0.0};
  q.doc = KeywordSet{kw};
  q.k = 1;
  q.alpha = 0.3;  // textual-leaning: object 0 wins
  const auto result = RefineAlpha(dataset, q, {1}, 0.5).value();
  ASSERT_FALSE(result.already_in_result);
  EXPECT_GT(result.alpha, q.alpha);  // moved toward spatial
  SpatialKeywordQuery refined = q;
  refined.alpha = result.alpha;
  EXPECT_LE(testing::BruteForceSetRank(dataset, refined, {1}), result.k);
}

TEST(AlphaRefinementTest, MultipleMissingObjects) {
  const Dataset dataset = SmallDataset(200, 4);
  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.6};
  q.doc = dataset.object(9).doc;
  q.k = 5;
  q.alpha = 0.5;
  SpatialKeywordQuery probe = q;
  probe.k = 30;
  const auto stream = BruteForceTopK(dataset, probe);
  const std::vector<ObjectId> missing{stream[14].id, stream[29].id};
  const auto result = RefineAlpha(dataset, q, missing, 0.5).value();
  if (result.already_in_result) GTEST_SKIP();
  SpatialKeywordQuery refined = q;
  refined.alpha = result.alpha;
  for (ObjectId m : missing) {
    EXPECT_LE(BruteForceRank(dataset, refined, m), result.k);
  }
}

TEST(AlphaRefinementTest, InvalidInputsRejected) {
  const Dataset dataset = SmallDataset(50, 5);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = dataset.object(0).doc;
  q.k = 5;
  q.alpha = 0.5;
  EXPECT_FALSE(RefineAlpha(dataset, q, {}, 0.5).ok());
  EXPECT_FALSE(RefineAlpha(dataset, q, {9999}, 0.5).ok());
  EXPECT_FALSE(RefineAlpha(dataset, q, {1}, 1.5).ok());
  SpatialKeywordQuery bad = q;
  bad.alpha = 0.0;
  EXPECT_FALSE(RefineAlpha(dataset, bad, {1}, 0.5).ok());
  EXPECT_FALSE(RefineAlpha(dataset, q, {1}, 0.5, 0.9, 0.2).ok());
}

}  // namespace
}  // namespace wsk
