// Batched multi-query top-k (docs/BATCHING.md): BatchedIndexTopK must be
// bit-identical to IndexTopK run solo for every query in the batch, on
// both tree sources, across batch sizes, mixed similarity models (which
// fall back to per-query leaf scoring), cancellation mid-batch, and k
// larger than the dataset. The trace counters must account the
// amortization exactly: every per-query node opening is either the
// expansion that performed the physical work or a shared ride on one.
#include "index/batch_topk.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/cancel.h"
#include "data/generator.h"
#include "index/kcr_tree.h"
#include "index/setr_tree.h"
#include "index/topk.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

class BatchTopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 300;
    config.vocab_size = 50;
    config.seed = 777;
    dataset_ = GenerateDataset(config);

    setr_file_ = std::make_unique<TempFile>("batch_setr");
    setr_pager_ = Pager::Create(setr_file_->path()).value();
    setr_pool_ = std::make_unique<BufferPool>(setr_pager_.get(), 4u << 20);
    SetRTree::Options setr_options;
    setr_options.capacity = 8;
    setr_tree_ =
        SetRTree::BulkLoad(dataset_, setr_pool_.get(), setr_options).value();

    kcr_file_ = std::make_unique<TempFile>("batch_kcr");
    kcr_pager_ = Pager::Create(kcr_file_->path()).value();
    kcr_pool_ = std::make_unique<BufferPool>(kcr_pager_.get(), 4u << 20);
    KcrTree::Options kcr_options;
    kcr_options.capacity = 8;
    kcr_tree_ =
        KcrTree::BulkLoad(dataset_, kcr_pool_.get(), kcr_options).value();
  }

  // A varied pool of queries: different locations, docs, k, alpha.
  std::vector<SpatialKeywordQuery> MakeQueries(size_t n) const {
    std::vector<SpatialKeywordQuery> queries;
    for (size_t i = 0; i < n; ++i) {
      SpatialKeywordQuery q;
      q.loc = Point{0.1 + 0.08 * static_cast<double>(i % 10),
                    0.9 - 0.07 * static_cast<double>(i % 11)};
      std::vector<TermId> terms(dataset_.object(13 * i + 5).doc.begin(),
                                dataset_.object(13 * i + 5).doc.end());
      if (terms.size() > 4) terms.resize(4);
      q.doc = KeywordSet(std::move(terms));
      q.k = 3 + static_cast<uint32_t>(i % 9);
      q.alpha = 0.2 + 0.1 * static_cast<double>(i % 6);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  void ExpectBitIdentical(const std::vector<ScoredObject>& got,
                          const std::vector<ScoredObject>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
      EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
    }
  }

  // Runs the queries solo and in batches of `batch_size` over `source`,
  // comparing every slot bit for bit.
  void RunDifferential(const TopKSource& source,
                       const std::vector<SpatialKeywordQuery>& queries,
                       size_t batch_size) {
    for (size_t start = 0; start < queries.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, queries.size());
      std::vector<BatchTopKRequest> requests;
      for (size_t i = start; i < end; ++i) {
        requests.push_back(BatchTopKRequest{&queries[i], nullptr});
      }
      std::vector<BatchTopKResult> batched =
          BatchedIndexTopK(source, requests);
      ASSERT_EQ(batched.size(), requests.size());
      for (size_t i = start; i < end; ++i) {
        SCOPED_TRACE("query " + std::to_string(i) + " batch_size " +
                     std::to_string(batch_size));
        StatusOr<std::vector<ScoredObject>> solo =
            IndexTopK(source, queries[i]);
        ASSERT_TRUE(solo.ok()) << solo.status().ToString();
        const BatchTopKResult& slot = batched[i - start];
        ASSERT_TRUE(slot.status.ok()) << slot.status.ToString();
        ExpectBitIdentical(slot.topk, solo.value());
      }
    }
  }

  Dataset dataset_;
  std::unique_ptr<TempFile> setr_file_;
  std::unique_ptr<Pager> setr_pager_;
  std::unique_ptr<BufferPool> setr_pool_;
  std::unique_ptr<SetRTree> setr_tree_;
  std::unique_ptr<TempFile> kcr_file_;
  std::unique_ptr<Pager> kcr_pager_;
  std::unique_ptr<BufferPool> kcr_pool_;
  std::unique_ptr<KcrTree> kcr_tree_;
};

TEST_F(BatchTopKTest, MatchesSoloOnSetRTree) {
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(16);
  for (size_t batch_size : {2u, 4u, 8u}) {
    RunDifferential(*setr_tree_, queries, batch_size);
  }
}

TEST_F(BatchTopKTest, MatchesSoloOnKcrTree) {
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(16);
  for (size_t batch_size : {2u, 4u, 8u}) {
    RunDifferential(*kcr_tree_, queries, batch_size);
  }
}

TEST_F(BatchTopKTest, MixedSimilarityModelsMatchSolo) {
  std::vector<SpatialKeywordQuery> queries = MakeQueries(9);
  const SimilarityModel models[] = {SimilarityModel::kJaccard,
                                    SimilarityModel::kDice,
                                    SimilarityModel::kOverlap};
  for (size_t i = 0; i < queries.size(); ++i) queries[i].model = models[i % 3];
  RunDifferential(*setr_tree_, queries, 3);
  RunDifferential(*kcr_tree_, queries, 3);
}

TEST_F(BatchTopKTest, KLargerThanDatasetEmitsEverything) {
  std::vector<SpatialKeywordQuery> queries = MakeQueries(4);
  for (SpatialKeywordQuery& q : queries) {
    q.k = static_cast<uint32_t>(dataset_.size()) + 10;
  }
  RunDifferential(*setr_tree_, queries, 4);
}

TEST_F(BatchTopKTest, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(BatchedIndexTopK(*setr_tree_, {}).empty());
}

TEST_F(BatchTopKTest, CancelledSlotFailsWithoutDisturbingOthers) {
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(3);
  CancelToken cancelled = CancelToken::Create();
  cancelled.Cancel();
  std::vector<BatchTopKRequest> requests = {
      BatchTopKRequest{&queries[0], nullptr},
      BatchTopKRequest{&queries[1], &cancelled},
      BatchTopKRequest{&queries[2], nullptr},
  };
  std::vector<BatchTopKResult> batched =
      BatchedIndexTopK(*setr_tree_, requests);
  ASSERT_EQ(batched.size(), 3u);
  EXPECT_EQ(batched[1].status.code(), StatusCode::kCancelled);
  for (size_t i : {0u, 2u}) {
    SCOPED_TRACE("slot " + std::to_string(i));
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    ExpectBitIdentical(batched[i].topk,
                       IndexTopK(*setr_tree_, queries[i]).value());
  }
}

TEST_F(BatchTopKTest, ExpiredDeadlineFailsSlot) {
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(2);
  CancelToken expired = CancelToken::WithTimeout(0.0001);
  // Spin until the deadline has definitely passed.
  while (expired.Check().ok()) {
  }
  std::vector<BatchTopKRequest> requests = {
      BatchTopKRequest{&queries[0], &expired},
      BatchTopKRequest{&queries[1], nullptr},
  };
  std::vector<BatchTopKResult> batched =
      BatchedIndexTopK(*setr_tree_, requests);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched[0].status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(batched[1].status.ok());
  ExpectBitIdentical(batched[1].topk,
                     IndexTopK(*setr_tree_, queries[1]).value());
}

TEST_F(BatchTopKTest, TraceCountersAccountAmortizationExactly) {
  // Four identical queries share every expansion: the physical work is a
  // quarter of the logical openings, and visited == expanded + shared.
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(1);
  std::vector<BatchTopKRequest> requests(4,
                                         BatchTopKRequest{&queries[0], nullptr});
  TraceRecorder trace(0);
  std::vector<BatchTopKResult> batched =
      BatchedIndexTopK(*setr_tree_, requests, /*use_cache=*/true, &trace);
  for (const BatchTopKResult& slot : batched) ASSERT_TRUE(slot.status.ok());

  EXPECT_EQ(trace.counter(TraceCounter::kBatchQueries), 4u);
  const uint64_t expanded = trace.counter(TraceCounter::kBatchNodesExpanded);
  const uint64_t shared = trace.counter(TraceCounter::kBatchNodesShared);
  const uint64_t visited = trace.counter(TraceCounter::kNodesVisited);
  EXPECT_GT(expanded, 0u);
  EXPECT_EQ(visited, expanded + shared);
  EXPECT_EQ(shared, 3 * expanded);  // perfect sharing across 4 clones
  EXPECT_EQ(trace.StageCount(TraceStage::kBatchTopK), 1u);
}

TEST_F(BatchTopKTest, ExpandNodeBatchMatchesSoloExpansion) {
  const std::vector<SpatialKeywordQuery> queries = MakeQueries(5);
  for (const TopKSource* source :
       {static_cast<const TopKSource*>(setr_tree_.get()),
        static_cast<const TopKSource*>(kcr_tree_.get())}) {
    const PageId root = source->SearchRoot();
    ASSERT_NE(root, kInvalidPageId);
    std::vector<const SpatialKeywordQuery*> ptrs;
    std::vector<std::vector<SearchEntry>> batch_out(queries.size());
    std::vector<std::vector<SearchEntry>*> outs;
    for (size_t i = 0; i < queries.size(); ++i) {
      ptrs.push_back(&queries[i]);
      outs.push_back(&batch_out[i]);
    }
    ASSERT_TRUE(source
                    ->ExpandNodeBatch(root, ptrs.data(), outs.data(),
                                      queries.size(), /*use_cache=*/true)
                    .ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      std::vector<SearchEntry> solo;
      ASSERT_TRUE(
          source->ExpandNode(root, queries[i], /*use_cache=*/true, &solo)
              .ok());
      ASSERT_EQ(batch_out[i].size(), solo.size());
      for (size_t e = 0; e < solo.size(); ++e) {
        EXPECT_EQ(batch_out[i][e].bound, solo[e].bound) << "entry " << e;
        EXPECT_EQ(batch_out[i][e].is_object, solo[e].is_object);
        EXPECT_EQ(batch_out[i][e].node, solo[e].node);
        EXPECT_EQ(batch_out[i][e].object, solo[e].object);
      }
    }
  }
}

}  // namespace
}  // namespace wsk
