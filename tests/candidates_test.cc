#include "core/candidates.h"

#include <gtest/gtest.h>

#include <set>

namespace wsk {
namespace {

// Fixture: doc0 = {a, b}; missing object doc = {b, c, d} where c is rare
// (particular to m) and a, d are common.
class CandidatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.Intern("a");
    b_ = vocab_.Intern("b");
    c_ = vocab_.Intern("c");
    d_ = vocab_.Intern("d");
    // Document frequencies: a and d very common, c rare, b medium.
    for (int i = 0; i < 100; ++i) {
      std::vector<TermId> doc{a_, d_};
      if (i < 2) doc.push_back(c_);
      if (i < 40) doc.push_back(b_);
      vocab_.RecordDocument(KeywordSet(std::move(doc)));
    }
    doc0_ = KeywordSet{a_, b_};
    missing_doc_ = KeywordSet{b_, c_, d_};
  }

  Vocabulary vocab_;
  TermId a_, b_, c_, d_;
  KeywordSet doc0_;
  KeywordSet missing_doc_;
};

TEST_F(CandidatesTest, UniverseIsUnion) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  EXPECT_EQ(e.universe_size(), 4u);
  EXPECT_EQ(e.universe(), (KeywordSet{a_, b_, c_, d_}));
}

TEST_F(CandidatesTest, EnumeratesAllNonEmptySubsetsExceptDoc0) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  // 2^4 - 1 subsets minus doc0 itself.
  EXPECT_EQ(e.ordered().size(), 14u);
  std::set<KeywordSet> seen;
  for (const Candidate& c : e.ordered()) {
    EXPECT_FALSE(c.doc.empty());
    EXPECT_NE(c.doc, doc0_);
    EXPECT_TRUE(seen.insert(c.doc).second);
  }
}

TEST_F(CandidatesTest, EditDistancesAreCorrect) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  for (const Candidate& c : e.ordered()) {
    EXPECT_EQ(c.edit_distance, EditDistance(doc0_, c.doc));
    EXPECT_GE(c.edit_distance, 1u);
  }
}

TEST_F(CandidatesTest, OrderedByEditDistanceThenBenefit) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  const auto& ordered = e.ordered();
  for (size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i - 1].edit_distance == ordered[i].edit_distance) {
      EXPECT_GE(ordered[i - 1].benefit, ordered[i].benefit);
    } else {
      EXPECT_LT(ordered[i - 1].edit_distance, ordered[i].edit_distance);
    }
  }
}

TEST_F(CandidatesTest, InsertingRareMissingTermRanksFirst) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  // Among edit-distance-1 candidates, {a,b,c} (insert rare c ∈ m.doc)
  // should come before {a,b,d} (insert common d) and before {a} / {b}
  // (delete).
  const auto& ordered = e.ordered();
  ASSERT_GE(ordered.size(), 1u);
  EXPECT_EQ(ordered[0].doc, (KeywordSet{a_, b_, c_}));
}

TEST_F(CandidatesTest, UnorderedCopyHasSameContent) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  const auto unordered = e.UnorderedCopy();
  EXPECT_EQ(unordered.size(), e.ordered().size());
  std::set<KeywordSet> a, b;
  for (const Candidate& c : unordered) a.insert(c.doc);
  for (const Candidate& c : e.ordered()) b.insert(c.doc);
  EXPECT_EQ(a, b);
}

TEST_F(CandidatesTest, SampleByBenefitTakesTopT) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  const auto sample = e.SampleByBenefit(5);
  ASSERT_EQ(sample.size(), 5u);
  // The sample contains the globally highest-benefit candidates.
  double min_sampled = std::numeric_limits<double>::infinity();
  for (const Candidate& c : sample) {
    min_sampled = std::min(min_sampled, c.benefit);
  }
  size_t better_than_min = 0;
  for (const Candidate& c : e.ordered()) {
    if (c.benefit > min_sampled) ++better_than_min;
  }
  EXPECT_LE(better_than_min, 5u);
  // And stays sorted by edit distance for batch processing.
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LE(sample[i - 1].edit_distance, sample[i].edit_distance);
  }
}

TEST_F(CandidatesTest, SampleLargerThanTotalReturnsAll) {
  CandidateEnumerator e(doc0_, {&missing_doc_}, vocab_);
  EXPECT_EQ(e.SampleByBenefit(1000).size(), e.ordered().size());
}

TEST_F(CandidatesTest, MultipleMissingObjectsExpandUniverse) {
  const KeywordSet other{vocab_.Intern("e")};
  CandidateEnumerator e(doc0_, {&missing_doc_, &other}, vocab_);
  EXPECT_EQ(e.universe_size(), 5u);
  EXPECT_EQ(e.ordered().size(), 30u);  // 2^5 - 1 - doc0
}

TEST(CandidatesEdgeTest, DisjointDocsStillEnumerate) {
  Vocabulary vocab;
  const KeywordSet doc0{vocab.Intern("x")};
  const KeywordSet m{vocab.Intern("y")};
  vocab.RecordDocument(doc0);
  vocab.RecordDocument(m);
  CandidateEnumerator e(doc0, {&m}, vocab);
  EXPECT_EQ(e.universe_size(), 2u);
  EXPECT_EQ(e.ordered().size(), 2u);  // {y}, {x,y}
}

}  // namespace
}  // namespace wsk
