// End-to-end tests of the QueryService: admission control, result cache,
// deadlines / cancellation (under all three why-not algorithms), and the
// engine's post-cancellation consistency.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/timer.h"
#include "data/generator.h"

namespace wsk {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 1500;
    config.vocab_size = 120;
    config.seed = 31337;
    dataset_ = GenerateDataset(config);
    engine_ = WhyNotEngine::Build(&dataset_, {}).value();
  }

  SpatialKeywordQuery Query() const {
    SpatialKeywordQuery q;
    q.loc = Point{0.4, 0.4};
    std::vector<TermId> terms(dataset_.object(12).doc.begin(),
                              dataset_.object(12).doc.end());
    if (terms.size() > 4) terms.resize(4);
    q.doc = KeywordSet(std::move(terms));
    q.k = 10;
    q.alpha = 0.5;
    return q;
  }

  // A why-not case that is genuinely slow for every algorithm: the missing
  // object has a large keyword set mostly disjoint from the query doc, so
  // the candidate universe is big, and it ranks well outside the top-k.
  std::vector<ObjectId> SlowMissing(const SpatialKeywordQuery& query) const {
    ObjectId best = kInvalidObjectId;
    size_t best_universe = 0;
    for (ObjectId id = 0; id < dataset_.size(); ++id) {
      const size_t universe = query.doc.UnionSize(dataset_.object(id).doc);
      if (universe <= best_universe) continue;
      const auto rank = engine_->Rank(query, id);
      if (!rank.ok() || rank.value() <= 2 * query.k) continue;
      best = id;
      best_universe = universe;
    }
    WSK_CHECK(best != kInvalidObjectId);
    WSK_CHECK_MSG(best_universe >= 10, "universe too small: %zu",
                  best_universe);
    return {best};
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(QueryServiceTest, TopKMatchesEngineAndCachesRepeat) {
  QueryService service(engine_.get(), {});
  const auto expected = engine_->TopK(Query()).value();

  const auto first = service.TopK(Query());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().cache_hit);
  ASSERT_EQ(first.value().results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(first.value().results[i].id, expected[i].id);
  }

  const auto second = service.TopK(Query());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  ASSERT_EQ(second.value().results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(second.value().results[i].id, expected[i].id);
  }
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST_F(QueryServiceTest, WhyNotMatchesEngineUnderEveryAlgorithm) {
  QueryService service(engine_.get(), {});
  const SpatialKeywordQuery query = Query();
  const ObjectId missing = engine_->ObjectAtPosition(query, 3 * query.k).value();
  WhyNotOptions options;

  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult expected =
        engine_->Answer(algorithm, query, {missing}, options).value();

    const auto first = service.WhyNot(algorithm, query, {missing}, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_FALSE(first.value().cache_hit);
    EXPECT_EQ(first.value().result.refined.k, expected.refined.k);
    EXPECT_DOUBLE_EQ(first.value().result.refined.penalty,
                     expected.refined.penalty);
    EXPECT_TRUE(first.value().result.refined.doc == expected.refined.doc);

    const auto second = service.WhyNot(algorithm, query, {missing}, options);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().cache_hit);
    EXPECT_DOUBLE_EQ(second.value().result.refined.penalty,
                     expected.refined.penalty);
  }
}

TEST_F(QueryServiceTest, BypassCacheSkipsLookupAndInsertion) {
  QueryService service(engine_.get(), {});
  RequestOptions opts;
  opts.bypass_cache = true;
  ASSERT_TRUE(service.TopK(Query(), opts).ok());
  ASSERT_TRUE(service.TopK(Query(), opts).ok());
  EXPECT_EQ(service.cache().stats().hits, 0u);
  EXPECT_EQ(service.cache().stats().insertions, 0u);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST_F(QueryServiceTest, MaxInflightRejectsWithResourceExhausted) {
  QueryServiceConfig config;
  config.num_workers = 1;
  config.max_inflight = 1;
  QueryService service(engine_.get(), config);

  // Occupy the only inflight slot with a slow BS request; its 150 ms
  // deadline bounds the test's runtime.
  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  RequestOptions slow;
  slow.timeout_ms = 150.0;
  auto held = service.SubmitWhyNot(WhyNotAlgorithm::kBasic, query, missing,
                                   WhyNotOptions{}, slow);

  // While it holds the slot, every further request is shed immediately.
  for (int i = 0; i < 5; ++i) {
    const auto rejected = service.TopK(Query());
    EXPECT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  }
  const auto held_result = held.get();
  EXPECT_FALSE(held_result.ok());
  EXPECT_EQ(held_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().counter("responses.rejected_overload").value(),
            5u);

  // With the slot free again, requests are admitted.
  EXPECT_TRUE(service.TopK(Query()).ok());
}

TEST_F(QueryServiceTest, FullWorkerQueueRejectsWithResourceExhausted) {
  QueryServiceConfig config;
  config.num_workers = 1;
  config.max_queue = 1;
  config.max_inflight = 0;  // exercise the queue bound, not the inflight cap
  QueryService service(engine_.get(), config);

  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  RequestOptions slow;
  slow.timeout_ms = 150.0;
  std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.SubmitWhyNot(WhyNotAlgorithm::kBasic, query,
                                           missing, WhyNotOptions{}, slow));
  }
  int rejected = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
      ++rejected;
    }
  }
  // One request can be executing and one pending; of the six submitted
  // back-to-back at least four found the queue full.
  EXPECT_GE(rejected, 4);
}

TEST_F(QueryServiceTest, DeadlineExceededUnderEveryAlgorithm) {
  QueryService service(engine_.get(), {});
  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  WhyNotOptions options;

  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    // Calibrate the deadline from a warm full run so the test adapts to
    // machine speed and sanitizer slowdowns. BS would take minutes on this
    // case, so its baseline is a fixed generous bound instead.
    double baseline_ms = 30000.0;
    if (algorithm != WhyNotAlgorithm::kBasic) {
      (void)engine_->Answer(algorithm, query, missing, options);  // warm
      Timer timer;
      ASSERT_TRUE(engine_->Answer(algorithm, query, missing, options).ok());
      baseline_ms = timer.ElapsedMillis();
    }
    RequestOptions opts;
    opts.timeout_ms = std::max(baseline_ms / 10.0, 0.05);
    opts.bypass_cache = true;

    Timer timer;
    const auto result =
        service.WhyNot(algorithm, query, missing, options, opts);
    const double elapsed_ms = timer.ElapsedMillis();
    ASSERT_FALSE(result.ok()) << WhyNotAlgorithmName(algorithm);
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << WhyNotAlgorithmName(algorithm) << ": "
        << result.status().ToString();
    // The query aborted cooperatively instead of running to completion:
    // for BS that difference is minutes vs a bounded abort.
    EXPECT_LT(elapsed_ms, 20000.0) << WhyNotAlgorithmName(algorithm);
  }
  EXPECT_EQ(service.metrics().counter("responses.deadline_exceeded").value(),
            3u);
}

TEST_F(QueryServiceTest, PreCancelledTokenReturnsCancelled) {
  QueryService service(engine_.get(), {});
  RequestOptions opts;
  opts.cancel = CancelToken::Create();
  opts.cancel.Cancel();
  const auto result = service.TopK(Query(), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.metrics().counter("responses.cancelled").value(), 1u);
}

TEST_F(QueryServiceTest, ClientCancellationAbortsInFlightQuery) {
  QueryService service(engine_.get(), {});
  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  RequestOptions opts;
  opts.cancel = CancelToken::Create();
  auto future = service.SubmitWhyNot(WhyNotAlgorithm::kBasic, query, missing,
                                     WhyNotOptions{}, opts);
  opts.cancel.Cancel();
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(QueryServiceTest, EngineConsistentAfterCancelledQueries) {
  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  const WhyNotResult baseline =
      engine_->Answer(WhyNotAlgorithm::kKcrBased, query, missing, {}).value();

  {
    QueryService service(engine_.get(), {});
    // Abandon a batch of queries mid-flight (deadline + explicit cancel).
    RequestOptions deadline;
    deadline.timeout_ms = 0.5;
    deadline.bypass_cache = true;
    for (int i = 0; i < 4; ++i) {
      (void)service.WhyNot(WhyNotAlgorithm::kKcrBased, query, missing, {},
                           deadline);
      (void)service.WhyNot(WhyNotAlgorithm::kAdvanced, query, missing, {},
                           deadline);
    }
    RequestOptions cancelled;
    cancelled.cancel = CancelToken::Create();
    cancelled.cancel.Cancel();
    (void)service.WhyNot(WhyNotAlgorithm::kBasic, query, missing, {},
                         cancelled);
  }

  // No query still in flight, no pinned pages leaked (DropCaches requires
  // every frame unpinned), and the engine still produces the exact answer.
  EXPECT_EQ(engine_->inflight_queries(), 0);
  EXPECT_TRUE(engine_->DropCaches().ok());
  const WhyNotResult after =
      engine_->Answer(WhyNotAlgorithm::kKcrBased, query, missing, {}).value();
  EXPECT_EQ(after.refined.k, baseline.refined.k);
  EXPECT_DOUBLE_EQ(after.refined.penalty, baseline.refined.penalty);
  EXPECT_TRUE(after.refined.doc == baseline.refined.doc);
}

TEST_F(QueryServiceTest, MetricsReportCoversAllSections) {
  QueryService service(engine_.get(), {});
  ASSERT_TRUE(service.TopK(Query()).ok());
  ASSERT_TRUE(service.TopK(Query()).ok());
  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("requests.total"), std::string::npos);
  EXPECT_NE(report.find("latency.topk.ms"), std::string::npos);
  EXPECT_NE(report.find("cache"), std::string::npos);
  EXPECT_NE(report.find("engine_io"), std::string::npos);
  EXPECT_NE(report.find("pool"), std::string::npos);
  EXPECT_NE(report.find("task_exceptions 0"), std::string::npos);
}

TEST_F(QueryServiceTest, DestructorDrainsOutstandingRequests) {
  std::future<StatusOr<QueryService::TopKResponse>> future;
  {
    QueryService service(engine_.get(), {});
    future = service.SubmitTopK(Query());
  }
  // The service is gone, but the admitted request completed on the way out.
  EXPECT_TRUE(future.get().ok());
}

}  // namespace
}  // namespace wsk
