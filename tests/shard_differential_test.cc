// N-shard vs single-engine differential suite (docs/SHARDING.md): the
// ShardCoordinator must be answer-invisible. For 130+ seeded scenarios and
// shard counts {2, 3, 5}, the frozen coordinator's top-k and all three
// why-not algorithms are compared bit for bit against one unsharded
// WhyNotEngine over the same dataset — identical scores and ids under the
// canonical (score desc, id asc) order, identical refined queries and
// penalties. The cross-shard bound pruning and the concatenated
// MergedTopKSource / KcrMultiSource why-not path therefore may reorder
// work, never answers.
//
// The mutation-interleaved suite drives a *live* sharded coordinator
// (SegmentedEngine per tile, routed mutations, coordinator-allocated ids)
// through seeded insert/update/delete batches and checks every answer
// against the brute force and a from-scratch single engine rebuilt over
// the logical object set — including corpus-wide document frequencies,
// which the shards maintain through one shared vocabulary.
//
// Sharded like differential_oracle_test via GTEST_TOTAL_SHARDS (see
// tests/CMakeLists.txt). Failures print the scenario seed.
#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "data/query.h"
#include "shard/shard_coordinator.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 132;  // inclusive; acceptance floor is 100
constexpr uint64_t kLastMutationSeed = 48;
constexpr uint32_t kShardCounts[] = {2, 3, 5};
constexpr int kBatches = 2;

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

void ExpectTopKBitIdentical(const std::vector<ScoredObject>& got,
                            const std::vector<ScoredObject>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
  }
}

void ExpectWhyNotEqual(const WhyNotResult& got, const WhyNotResult& want) {
  EXPECT_EQ(got.already_in_result, want.already_in_result);
  EXPECT_EQ(got.stats.initial_rank, want.stats.initial_rank);
  EXPECT_EQ(got.refined.penalty, want.refined.penalty);  // bit exact
  EXPECT_TRUE(got.refined.doc == want.refined.doc)
      << "got " << got.refined.doc.ToString() << " want "
      << want.refined.doc.ToString();
  EXPECT_EQ(got.refined.k, want.refined.k);
  EXPECT_EQ(got.refined.rank, want.refined.rank);
  EXPECT_EQ(got.refined.edit_distance, want.refined.edit_distance);
}

class ShardDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardDifferentialTest, FrozenCoordinatorMatchesSingleEngine) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  WhyNotEngine::Config single_config;
  single_config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> single =
      WhyNotEngine::Build(&scenario->dataset, single_config);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  StatusOr<std::vector<ScoredObject>> want_topk =
      single.value()->TopK(scenario->query);
  ASSERT_TRUE(want_topk.ok()) << want_topk.status().ToString();

  std::vector<WhyNotResult> want_whynot;
  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    StatusOr<WhyNotResult> want = single.value()->Answer(
        algorithm, scenario->query, scenario->missing, scenario->options);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    want_whynot.push_back(std::move(want).value());
  }

  for (uint32_t num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardCoordinator::Config config;
    config.num_shards = num_shards;
    config.node_capacity = 16;
    StatusOr<std::unique_ptr<ShardCoordinator>> coordinator =
        ShardCoordinator::Build(scenario->dataset, config);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

    StatusOr<std::vector<ScoredObject>> topk =
        coordinator.value()->TopK(scenario->query);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    ExpectTopKBitIdentical(topk.value(), want_topk.value());

    for (size_t a = 0; a < std::size(kAlgorithms); ++a) {
      SCOPED_TRACE(WhyNotAlgorithmName(kAlgorithms[a]));
      StatusOr<WhyNotResult> got = coordinator.value()->Answer(
          kAlgorithms[a], scenario->query, scenario->missing,
          scenario->options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectWhyNotEqual(got.value(), want_whynot[a]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferentialTest,
                         ::testing::Range<uint64_t>(kFirstSeed, kLastSeed + 1));

// ---------------------------------------------------------------------------
// Mutation-interleaved variant over sharded live SegmentedEngines.

struct ObjectRecord {
  Point loc;
  std::vector<std::string> keywords;
};

// The logical mirror the coordinator is compared against.
using Mirror = std::map<ObjectId, ObjectRecord>;

std::vector<std::string> TermStrings(const Vocabulary& vocabulary,
                                     const KeywordSet& doc) {
  std::vector<std::string> out;
  out.reserve(doc.size());
  for (TermId t : doc) out.push_back(vocabulary.TermString(t));
  return out;
}

Dataset RebuildReference(const ShardCoordinator& coordinator,
                         const Mirror& mirror) {
  Dataset reference;
  reference.vocabulary() = coordinator.vocabulary().CloneDictionary();
  reference.OverrideDiagonal(coordinator.diagonal());
  for (const auto& [id, record] : mirror) {  // std::map: ascending id order
    reference.AddWithId(id, record.loc,
                        reference.vocabulary().InternAll(record.keywords));
  }
  return reference;
}

// Full checkpoint: df reconciliation, top-k vs brute force, all three
// algorithms vs a from-scratch unsharded engine over the same objects.
void RunCheckpoint(const ShardCoordinator& coordinator, const Mirror& mirror,
                   const testing::WhyNotScenario& scenario) {
  const Dataset reference = RebuildReference(coordinator, mirror);

  // The shared vocabulary accumulated document frequencies across every
  // routed mutation; the reference re-recorded them from scratch.
  ASSERT_EQ(coordinator.vocabulary().DocumentFrequencies(),
            reference.vocabulary().DocumentFrequencies());

  StatusOr<std::vector<ScoredObject>> topk = coordinator.TopK(scenario.query);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ExpectTopKBitIdentical(topk.value(),
                         BruteForceTopK(reference, scenario.query));

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> rebuilt =
      WhyNotEngine::Build(&reference, config);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    StatusOr<WhyNotResult> sharded = coordinator.Answer(
        algorithm, scenario.query, scenario.missing, scenario.options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    StatusOr<WhyNotResult> fresh = rebuilt.value()->Answer(
        algorithm, scenario.query, scenario.missing, scenario.options);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    ExpectWhyNotEqual(sharded.value(), fresh.value());
  }
}

class ShardMutationDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardMutationDifferentialTest, LiveShardedMatchesRebuiltSingleEngine) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());
  const uint32_t num_shards = kShardCounts[seed % std::size(kShardCounts)];
  SCOPED_TRACE("shards=" + std::to_string(num_shards));

  Mirror mirror;
  for (const SpatialObject& o : scenario->dataset.objects()) {
    mirror[o.id] =
        ObjectRecord{o.loc, TermStrings(scenario->dataset.vocabulary(),
                                        o.doc)};
  }
  const Rect bounds = scenario->dataset.bounding_rect();

  ShardCoordinator::Config config;
  config.num_shards = num_shards;
  config.live = true;
  config.node_capacity = 16;
  config.delta_capacity = 4 + static_cast<uint32_t>(seed % 13);
  config.auto_merge = (seed % 2) == 0;
  StatusOr<std::unique_ptr<ShardCoordinator>> built =
      ShardCoordinator::Build(scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardCoordinator* coordinator = built.value().get();

  // The missing objects must survive untouched: their documents pin the
  // why-not instance.
  std::vector<ObjectId> mutable_ids;
  for (const auto& [id, record] : mirror) {
    if (std::find(scenario->missing.begin(), scenario->missing.end(), id) ==
        scenario->missing.end()) {
      mutable_ids.push_back(id);
    }
  }
  const uint64_t width =
      static_cast<uint64_t>(std::max(1.0, bounds.max_x - bounds.min_x));
  const uint64_t height =
      static_cast<uint64_t>(std::max(1.0, bounds.max_y - bounds.min_y));

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 7);
  for (int batch = 0; batch < kBatches; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    const int ops = 6 + static_cast<int>(rng.Next() % 6);
    for (int op = 0; op < ops; ++op) {
      const uint64_t r = rng.Next();
      const Point loc{
          bounds.min_x + static_cast<double>((r >> 16) % (8 * width)) / 8.0,
          bounds.min_y + static_cast<double>((r >> 32) % (8 * height)) / 8.0};
      std::vector<std::string> keywords;
      const uint32_t num_terms = coordinator->vocabulary().num_terms();
      const int nkw = 1 + static_cast<int>(r % 3);
      for (int t = 0; t < nkw; ++t) {
        const uint64_t pick = rng.Next();
        if (pick % 8 == 0) {
          keywords.push_back("live" + std::to_string(pick % 5));
        } else {
          keywords.push_back(coordinator->vocabulary().TermString(
              static_cast<TermId>(pick % num_terms)));
        }
      }
      const int kind = static_cast<int>(r % 10);
      if (kind < 4 || mutable_ids.empty()) {  // insert
        StatusOr<ObjectId> id = coordinator->Insert(loc, keywords);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        EXPECT_GE(coordinator->OwnerShard(id.value()), 0);
        mirror[id.value()] = ObjectRecord{loc, keywords};
        mutable_ids.push_back(id.value());
      } else if (kind < 7) {  // update
        const ObjectId id = mutable_ids[rng.Next() % mutable_ids.size()];
        ASSERT_TRUE(coordinator->Update(id, loc, keywords).ok());
        mirror[id] = ObjectRecord{loc, keywords};
      } else {  // delete
        const size_t pos = rng.Next() % mutable_ids.size();
        const ObjectId id = mutable_ids[pos];
        mutable_ids.erase(mutable_ids.begin() + pos);
        ASSERT_TRUE(coordinator->Delete(id).ok());
        mirror.erase(id);
      }
    }
    RunCheckpoint(*coordinator, mirror, *scenario);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ShardMutationDifferentialTest,
    ::testing::Range<uint64_t>(kFirstSeed, kLastMutationSeed + 1));

}  // namespace
}  // namespace wsk
