#include "core/integrated.h"

#include <gtest/gtest.h>

#include "core/explain.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

class IntegratedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 250;
    config.vocab_size = 40;
    config.seed = 777;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 8;
    engine_ = WhyNotEngine::Build(&dataset_, engine_config).value();
  }

  SpatialKeywordQuery Query() const {
    SpatialKeywordQuery q;
    q.loc = Point{0.45, 0.55};
    q.doc = dataset_.object(21).doc;
    q.k = 5;
    q.alpha = 0.5;
    return q;
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(IntegratedTest, PicksTheCheaperRefinement) {
  const ObjectId missing = engine_->ObjectAtPosition(Query(), 18).value();
  WhyNotOptions options;
  const IntegratedResult result =
      AnswerWhyNotIntegrated(*engine_, WhyNotAlgorithm::kKcrBased, Query(),
                             {missing}, options)
          .value();
  ASSERT_NE(result.kind, RefinementKind::kNone);
  EXPECT_DOUBLE_EQ(result.best_penalty,
                   std::min(result.keywords.refined.penalty,
                            result.preference.penalty));
  if (result.kind == RefinementKind::kKeywords) {
    EXPECT_LE(result.keywords.refined.penalty, result.preference.penalty);
  } else {
    EXPECT_LT(result.preference.penalty, result.keywords.refined.penalty);
  }
}

TEST_F(IntegratedTest, NoneWhenObjectPresent) {
  const ObjectId top = engine_->ObjectAtPosition(Query(), 1).value();
  WhyNotOptions options;
  const IntegratedResult result =
      AnswerWhyNotIntegrated(*engine_, WhyNotAlgorithm::kAdvanced, Query(),
                             {top}, options)
          .value();
  EXPECT_EQ(result.kind, RefinementKind::kNone);
  EXPECT_DOUBLE_EQ(result.best_penalty, 0.0);
}

TEST_F(IntegratedTest, KindNames) {
  EXPECT_STREQ(RefinementKindName(RefinementKind::kNone), "none");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kKeywords), "keywords");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kPreference), "preference");
}

TEST_F(IntegratedTest, ExplainMissingObject) {
  const ObjectId missing = engine_->ObjectAtPosition(Query(), 18).value();
  const MissExplanation explanation =
      ExplainMiss(*engine_, Query(), missing).value();
  EXPECT_FALSE(explanation.in_result);
  EXPECT_EQ(explanation.rank, engine_->Rank(Query(), missing).value());
  EXPECT_NEAR(explanation.missing_score,
              explanation.spatial_term + explanation.textual_term, 1e-12);
  EXPECT_GE(explanation.deficit, 0.0);
  EXPECT_GT(explanation.kth_score, explanation.missing_score);
  EXPECT_LE(explanation.matched_keywords, explanation.query_keywords);
  EXPECT_NE(explanation.ToString().find("deficit"), std::string::npos);
}

TEST_F(IntegratedTest, ExplainPresentObject) {
  const ObjectId top = engine_->ObjectAtPosition(Query(), 1).value();
  const MissExplanation explanation =
      ExplainMiss(*engine_, Query(), top).value();
  EXPECT_TRUE(explanation.in_result);
  EXPECT_EQ(explanation.rank, 1u);
  EXPECT_NE(explanation.ToString().find("inside the top-"),
            std::string::npos);
}

TEST_F(IntegratedTest, ExplainRejectsBadInput) {
  EXPECT_FALSE(ExplainMiss(*engine_, Query(), 999999).ok());
  SpatialKeywordQuery bad = Query();
  bad.k = 0;
  EXPECT_FALSE(ExplainMiss(*engine_, bad, 1).ok());
}

}  // namespace
}  // namespace wsk
