#include "storage/node_cache.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace wsk {
namespace {

// A payload with a visible byte footprint and a trivial fingerprint.
std::shared_ptr<const std::vector<uint64_t>> MakePayload(uint64_t tag,
                                                         size_t words = 4) {
  auto v = std::make_shared<std::vector<uint64_t>>(words, tag);
  return v;
}

uint64_t FingerprintPayload(const void* value) {
  const auto* v = static_cast<const std::vector<uint64_t>*>(value);
  FingerprintHasher hasher;
  hasher.MixU64(v->size());
  hasher.Mix(v->data(), v->size() * sizeof(uint64_t));
  return hasher.digest();
}

TEST(NodeCacheTest, LookupMissThenHit) {
  NodeCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(1, 7), nullptr);
  auto payload = MakePayload(42);
  EXPECT_TRUE(cache.Insert(1, 7, payload, 100));
  auto hit = cache.LookupAs<std::vector<uint64_t>>(1, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), payload.get());

  const NodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_in_use, 100u);
  EXPECT_EQ(stats.bytes_inserted, 100u);
  EXPECT_EQ(stats.capacity_bytes, 1024u);
}

TEST(NodeCacheTest, KeysArePerTree) {
  NodeCache cache(1024, 1);
  ASSERT_TRUE(cache.Insert(1, 7, MakePayload(1), 10));
  EXPECT_EQ(cache.Lookup(2, 7), nullptr);  // same page, other tree
  EXPECT_NE(cache.Lookup(1, 7), nullptr);
}

TEST(NodeCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // One shard so the LRU order is deterministic. Budget holds two 100-byte
  // entries, not three.
  NodeCache cache(/*capacity_bytes=*/250, /*num_shards=*/1);
  ASSERT_TRUE(cache.Insert(1, 1, MakePayload(1), 100));
  ASSERT_TRUE(cache.Insert(1, 2, MakePayload(2), 100));
  // Touch key 1 so key 2 becomes LRU.
  ASSERT_NE(cache.Lookup(1, 1), nullptr);
  ASSERT_TRUE(cache.Insert(1, 3, MakePayload(3), 100));

  EXPECT_EQ(cache.Lookup(1, 2), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 3), nullptr);

  const NodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // Byte budget holds exactly the two residents; the cumulative insert
  // counter keeps all three.
  EXPECT_EQ(stats.bytes_in_use, 200u);
  EXPECT_EQ(stats.bytes_inserted, 300u);
  EXPECT_LE(stats.bytes_in_use, cache.capacity_bytes());
}

TEST(NodeCacheTest, OversizedInsertIsRejected) {
  NodeCache cache(/*capacity_bytes=*/200, /*num_shards=*/1);
  ASSERT_TRUE(cache.Insert(1, 1, MakePayload(1), 150));
  // A charge above the shard budget must not flush the shard.
  EXPECT_FALSE(cache.Insert(1, 2, MakePayload(2), 500));
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
  const NodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.bytes_in_use, 150u);
}

TEST(NodeCacheTest, DuplicateInsertKeepsExistingEntry) {
  NodeCache cache(1024, 1);
  auto first = MakePayload(1);
  ASSERT_TRUE(cache.Insert(1, 1, first, 100));
  EXPECT_FALSE(cache.Insert(1, 1, MakePayload(2), 100));
  auto hit = cache.LookupAs<std::vector<uint64_t>>(1, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), first.get());
  EXPECT_EQ(cache.GetStats().bytes_in_use, 100u);
}

TEST(NodeCacheTest, ZeroCapacityDisablesInsertion) {
  NodeCache cache(0, 1);
  EXPECT_FALSE(cache.Insert(1, 1, MakePayload(1), 1));
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(NodeCacheTest, EraseAndEraseTreeAndClear) {
  NodeCache cache(4096, 1);
  ASSERT_TRUE(cache.Insert(1, 1, MakePayload(1), 10));
  ASSERT_TRUE(cache.Insert(1, 2, MakePayload(2), 10));
  ASSERT_TRUE(cache.Insert(2, 1, MakePayload(3), 10));

  cache.Erase(1, 1);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_EQ(cache.GetStats().bytes_in_use, 20u);

  cache.EraseTree(1);
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(2, 1), nullptr);
  EXPECT_EQ(cache.GetStats().bytes_in_use, 10u);

  cache.Clear();
  EXPECT_EQ(cache.Lookup(2, 1), nullptr);
  const NodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  // Erase/EraseTree/Clear are invalidations, not capacity evictions.
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(NodeCacheTest, EvictedValueStaysAliveForOutstandingReaders) {
  NodeCache cache(/*capacity_bytes=*/150, /*num_shards=*/1);
  ASSERT_TRUE(cache.Insert(1, 1, MakePayload(7), 100));
  auto held = cache.LookupAs<std::vector<uint64_t>>(1, 1);
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(cache.Insert(1, 2, MakePayload(8), 100));  // evicts key 1
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  // The reader's shared_ptr keeps the payload valid after eviction.
  EXPECT_EQ((*held)[0], 7u);
}

TEST(NodeCacheTest, FingerprintVerificationPassesForImmutableValue) {
  NodeCache cache(1024, 1);
  cache.set_verify_fingerprints(true);
  ASSERT_TRUE(cache.Insert(1, 1, MakePayload(5), 64, &FingerprintPayload));
  // Repeated lookups recompute and re-check the fingerprint.
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
}

TEST(NodeCacheDeathTest, FingerprintVerificationCatchesMutation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  NodeCache cache(1024, 1);
  cache.set_verify_fingerprints(true);
  auto payload = std::make_shared<std::vector<uint64_t>>(4, 9u);
  ASSERT_TRUE(cache.Insert(1, 1, payload, 64, &FingerprintPayload));
  // Mutating a cached payload violates the immutability contract; the next
  // lookup must abort.
  (*payload)[0] = 123;
  EXPECT_DEATH(cache.Lookup(1, 1), "mutated after insertion");
}

TEST(NodeCacheTest, NextTreeIdIsUniqueAndNonZero) {
  const uint32_t a = NodeCache::NextTreeId();
  const uint32_t b = NodeCache::NextTreeId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace wsk
