// The telemetry pipeline threaded through the QueryService
// (docs/OBSERVABILITY.md "Continuous telemetry"): sampled profiles whose
// stage breakdown covers the recorded wall time, forced-slow capture with
// the JSONL stream, rolling-window accounting for completions / cache hits
// / shed requests, background batch-dispatch profiles, and the master
// switch that removes the hub entirely.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "data/generator.h"

namespace wsk {
namespace {

class ServiceTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 1500;
    config.vocab_size = 120;
    config.seed = 31337;
    dataset_ = GenerateDataset(config);
    engine_ = WhyNotEngine::Build(&dataset_, {}).value();
  }

  SpatialKeywordQuery Query(size_t i = 12) const {
    SpatialKeywordQuery q;
    q.loc = Point{0.4, 0.4};
    std::vector<TermId> terms(dataset_.object(i).doc.begin(),
                              dataset_.object(i).doc.end());
    if (terms.size() > 4) terms.resize(4);
    q.doc = KeywordSet(std::move(terms));
    q.k = 10;
    q.alpha = 0.5;
    return q;
  }

  // A why-not case that is genuinely slow for BS: a big candidate universe
  // with the missing object well outside the top-k (same construction as
  // query_service_test).
  std::vector<ObjectId> SlowMissing(const SpatialKeywordQuery& query) const {
    ObjectId best = kInvalidObjectId;
    size_t best_universe = 0;
    for (ObjectId id = 0; id < dataset_.size(); ++id) {
      const size_t universe = query.doc.UnionSize(dataset_.object(id).doc);
      if (universe <= best_universe) continue;
      const auto rank = engine_->Rank(query, id);
      if (!rank.ok() || rank.value() <= 2 * query.k) continue;
      best = id;
      best_universe = universe;
    }
    WSK_CHECK(best != kInvalidObjectId);
    return {best};
  }

  // Telemetry that profiles every request and never classifies slow.
  QueryServiceConfig ProfileEverything() const {
    QueryServiceConfig config;
    config.telemetry.sample_every = 1;
    config.telemetry.slow_factor = 0.0;
    config.telemetry.slow_min_ms = 0.0;
    return config;
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(ServiceTelemetryTest, SampledProfilesCarryEventsAndCoverWall) {
  QueryService service(engine_.get(), ProfileEverything());
  ASSERT_NE(service.telemetry(), nullptr);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.TopK(Query(12 + i)).ok());  // distinct: all misses
  }
  const SpatialKeywordQuery query = Query();
  const ObjectId missing = engine_->ObjectAtPosition(query, 2 * query.k).value();
  ASSERT_TRUE(
      service.WhyNot(WhyNotAlgorithm::kAdvanced, query, {missing}, {}).ok());

  const std::vector<QueryProfile> profiles = service.telemetry()->Profiles();
  ASSERT_EQ(profiles.size(), 5u);
  for (const QueryProfile& p : profiles) {
    EXPECT_TRUE(p.sampled) << p.Summary();
    EXPECT_TRUE(p.ok) << p.Summary();
    EXPECT_EQ(p.status, "OK");
    EXPECT_FALSE(p.events.empty()) << p.Summary();
    EXPECT_NE(p.fingerprint, 0u);
    EXPECT_GT(p.wall_ms, 0.0);
    EXPECT_GE(p.queue_ms, 0.0);
  }
  EXPECT_EQ(profiles.back().kind, ProfileKind::kWhyNot);
  EXPECT_EQ(profiles.back().algorithm,
            WhyNotAlgorithmName(WhyNotAlgorithm::kAdvanced));

  // The acceptance contract: the per-stage breakdown explains the recorded
  // execution wall, not some unrelated clock. The why-not profile runs for
  // milliseconds, so microsecond stage truncation is noise.
  const QueryProfile& whynot = profiles.back();
  EXPECT_GE(whynot.StageSumMs(), 0.95 * whynot.wall_ms) << whynot.Summary();
  EXPECT_GT(whynot.counters[static_cast<size_t>(TraceCounter::kNodesSeen)],
            0u);

  const TelemetryStats stats = service.telemetry()->stats();
  EXPECT_EQ(stats.requests_observed, 5u);
  EXPECT_EQ(stats.profiles_sampled, 5u);
}

TEST_F(ServiceTelemetryTest, CacheHitsCountInWindowsWithoutProfiles) {
  QueryService service(engine_.get(), ProfileEverything());
  ASSERT_TRUE(service.TopK(Query()).ok());
  ASSERT_TRUE(service.TopK(Query()).ok());  // served from the result cache

  const TelemetryStats stats = service.telemetry()->stats();
  EXPECT_EQ(stats.requests_observed, 2u);
  // The hit executed nothing, so only the miss carried a recorder.
  EXPECT_EQ(stats.profiles_sampled, 1u);

  const RollingWindows::Snapshot w = service.telemetry()->Window(60);
  EXPECT_EQ(w.requests, 2u);
  EXPECT_EQ(w.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(w.hit_ratio, 0.5);
  EXPECT_GT(w.qps, 0.0);
  EXPECT_GT(w.p99_ms, 0.0);

  const std::vector<QueryProfile> profiles = service.telemetry()->Profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_FALSE(profiles[0].cache_hit);
}

TEST_F(ServiceTelemetryTest, ForcedSlowQueryStreamsStructuredJsonl) {
  const std::string path =
      ::testing::TempDir() + "/service_telemetry_slow.jsonl";
  std::remove(path.c_str());

  QueryServiceConfig config;
  config.telemetry.sample_every = 0;  // aggregate-only recorders are enough
  // Fixed 1 us floor: every completion is slow. (The threshold is stored
  // in whole microseconds, so a smaller floor would truncate to disabled.)
  config.telemetry.slow_factor = 0.0;
  config.telemetry.slow_min_ms = 0.001;
  config.telemetry.slow_log_path = path;
  QueryService service(engine_.get(), config);

  const SpatialKeywordQuery query = Query();
  const ObjectId missing = engine_->ObjectAtPosition(query, 2 * query.k).value();
  ASSERT_TRUE(
      service.WhyNot(WhyNotAlgorithm::kKcrBased, query, {missing}, {}).ok());

  const std::vector<QueryProfile> slow = service.telemetry()->SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_TRUE(slow[0].slow);
  EXPECT_EQ(slow[0].kind, ProfileKind::kWhyNot);
  // The record keeps the stage breakdown (covering the wall) but drops the
  // event buffer.
  EXPECT_GE(slow[0].StageSumMs(), 0.95 * slow[0].wall_ms)
      << slow[0].Summary();
  EXPECT_TRUE(slow[0].events.empty());
  EXPECT_EQ(service.telemetry()->stats().slow_queries, 1u);

  // The JSONL sink got one structured line at capture time.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"whynot\""), std::string::npos);
  EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"stages\":{"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one slow completion
  std::remove(path.c_str());
}

TEST_F(ServiceTelemetryTest, ShedRequestsLandInTheWindows) {
  QueryServiceConfig config = ProfileEverything();
  config.num_workers = 1;
  config.max_inflight = 1;
  QueryService service(engine_.get(), config);

  // Hold the only inflight slot with a deadline-bounded why-not, then
  // offer load that admission control must shed.
  const SpatialKeywordQuery query = Query();
  const std::vector<ObjectId> missing = SlowMissing(query);
  RequestOptions slow_opts;
  slow_opts.timeout_ms = 150.0;
  auto held = service.SubmitWhyNot(WhyNotAlgorithm::kBasic, query, missing,
                                   WhyNotOptions{}, slow_opts);
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    if (!service.TopK(Query()).ok()) ++shed;
  }
  (void)held.get();

  ASSERT_GT(shed, 0);
  const RollingWindows::Snapshot w = service.telemetry()->Window(60);
  EXPECT_EQ(w.shed, static_cast<uint64_t>(shed));
  EXPECT_GT(w.shed_ratio, 0.0);
}

TEST_F(ServiceTelemetryTest, BatchDispatchesProfileAsBackgroundWork) {
  QueryServiceConfig config = ProfileEverything();
  config.batch_max_size = 4;
  config.batch_window_ms = 5.0;
  QueryService service(engine_.get(), config);

  constexpr size_t kN = 8;
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  for (size_t i = 0; i < kN; ++i) {
    futures.push_back(service.SubmitTopK(Query(11 * i + 3)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  // Every batched item reports its own completion into the windows; the
  // shared dispatch reports once more as background work that stays out
  // of the per-request rates.
  const RollingWindows::Snapshot w = service.telemetry()->Window(60);
  EXPECT_EQ(w.requests, kN);

  const std::vector<QueryProfile> profiles = service.telemetry()->Profiles();
  int batch_profiles = 0;
  for (const QueryProfile& p : profiles) {
    if (p.kind != ProfileKind::kBatch) continue;
    ++batch_profiles;
    EXPECT_EQ(p.algorithm, "batch");
    EXPECT_FALSE(p.slow);
    EXPECT_GT(
        p.counters[static_cast<size_t>(TraceCounter::kBatchQueries)], 0u);
  }
  EXPECT_GE(batch_profiles, 1);

  // The collector's own instrumentation moved too.
  EXPECT_GE(service.metrics().counter("bg.collector.dispatches").value(), 1u);
  EXPECT_NE(service.MetricsReport().find("bg.collector.exec.ms"),
            std::string::npos);
}

TEST_F(ServiceTelemetryTest, ReportsExposeTelemetrySections) {
  QueryService service(engine_.get(), ProfileEverything());
  ASSERT_TRUE(service.TopK(Query()).ok());

  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("telemetry observed 1 sampled 1"), std::string::npos);
  EXPECT_NE(report.find("window.1s"), std::string::npos);
  EXPECT_NE(report.find("window.60s"), std::string::npos);

  const std::string prom = service.PrometheusReport();
  EXPECT_NE(prom.find("wsk_telemetry_requests_observed_total 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wsk_window_request_rate{window=\"60s\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("wsk_trace_dropped_events_total"), std::string::npos);
}

TEST_F(ServiceTelemetryTest, DisabledTelemetryRemovesTheHub) {
  QueryServiceConfig config;
  config.telemetry.enabled = false;
  QueryService service(engine_.get(), config);
  EXPECT_EQ(service.telemetry(), nullptr);

  ASSERT_TRUE(service.TopK(Query()).ok());
  EXPECT_EQ(service.MetricsReport().find("telemetry observed"),
            std::string::npos);
  const std::string prom = service.PrometheusReport();
  EXPECT_EQ(prom.find("wsk_window_request_rate"), std::string::npos);
  EXPECT_EQ(prom.find("wsk_telemetry_"), std::string::npos);
  // Build info and process gauges stay: they describe the process, not
  // the sampling pipeline.
  EXPECT_NE(prom.find("wsk_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("wsk_process_uptime_seconds"), std::string::npos);
}

}  // namespace
}  // namespace wsk
