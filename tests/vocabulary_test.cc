#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace wsk {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("hotel");
  const TermId b = v.Intern("café");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("hotel"), a);
  EXPECT_EQ(v.num_terms(), 2u);
  EXPECT_EQ(v.TermString(a), "hotel");
  EXPECT_EQ(v.TermString(b), "café");
}

TEST(VocabularyTest, FindUnknownReturnsInvalid) {
  Vocabulary v;
  v.Intern("known");
  EXPECT_EQ(v.Find("known"), 0u);
  EXPECT_EQ(v.Find("unknown"), Vocabulary::kInvalidTermId);
}

TEST(VocabularyTest, InternAllBuildsSet) {
  Vocabulary v;
  const KeywordSet set = v.InternAll({"b", "a", "b"});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(v.Find("a")));
  EXPECT_TRUE(set.Contains(v.Find("b")));
}

TEST(VocabularyTest, DocumentFrequencies) {
  Vocabulary v;
  const TermId common = v.Intern("restaurant");
  const TermId rare = v.Intern("sichuan");
  v.RecordDocument(KeywordSet{common});
  v.RecordDocument(KeywordSet{common});
  v.RecordDocument(KeywordSet{common, rare});
  EXPECT_EQ(v.num_documents(), 3u);
  EXPECT_EQ(v.DocumentFrequency(common), 3u);
  EXPECT_EQ(v.DocumentFrequency(rare), 1u);
  EXPECT_EQ(v.DocumentFrequency(12345), 0u);
}

TEST(VocabularyTest, IdfOrdersRareAboveCommon) {
  Vocabulary v;
  const TermId common = v.Intern("restaurant");
  const TermId rare = v.Intern("sichuan");
  for (int i = 0; i < 99; ++i) {
    v.RecordDocument(i == 0 ? KeywordSet{common, rare}
                            : KeywordSet{common});
  }
  EXPECT_GT(v.Idf(rare), v.Idf(common));
  // A term in nearly every document has negative idf (BM25 behaviour).
  EXPECT_LT(v.Idf(common), 0.0);
  EXPECT_GT(v.Idf(rare), 0.0);
}

TEST(VocabularyTest, ParticularitySigns) {
  // Eqn 7 for *rare* terms: positive when the object has the term, negative
  // when it does not. (For terms in more than half the corpus the idf — and
  // with it both signs — flips, the standard BM25 behaviour.)
  Vocabulary v;
  const TermId rare_in = v.Intern("sichuan");
  const TermId rare_out = v.Intern("korean");
  const TermId common = v.Intern("restaurant");
  for (int i = 0; i < 50; ++i) {
    std::vector<TermId> doc{common};
    if (i < 2) doc.push_back(rare_in);
    if (i < 3) doc.push_back(rare_out);
    v.RecordDocument(KeywordSet(std::move(doc)));
  }
  const KeywordSet doc{rare_in, common};
  EXPECT_GT(v.Particularity(doc, rare_in), 0.0);
  EXPECT_LT(v.Particularity(doc, rare_out), 0.0);
  // A ubiquitous term carried by the object scores negative: it does not
  // make the query more particular to the object.
  EXPECT_LT(v.Particularity(doc, common), 0.0);
  // Antisymmetric between an object that has the term and one that lacks it.
  EXPECT_DOUBLE_EQ(v.Particularity(doc, rare_in),
                   -v.Particularity(KeywordSet{rare_out}, rare_in));
}

}  // namespace
}  // namespace wsk
