#include "core/penalty.h"

#include <gtest/gtest.h>

namespace wsk {
namespace {

// Table I of the paper: k0 = 1, R(m, q) = 3, |doc0 ∪ m.doc| = 3,
// lambda = 0.5.
class TableOnePenalty : public ::testing::Test {
 protected:
  PenaltyModel pm_{0.5, 1, 3, 3};
};

TEST_F(TableOnePenalty, BasicRefinedQueryQ1) {
  // q1 = (3, {t1,t2}): dk = 2 (normalized 1), ddoc = 0 -> penalty 0.5.
  EXPECT_DOUBLE_EQ(pm_.Penalty(3, 0), 0.5);
}

TEST_F(TableOnePenalty, KeywordOnlyRefinementQ2) {
  // q2 = (1, {t2,t3}): dk = 0, ddoc = 2/3 -> penalty 0.33.
  EXPECT_NEAR(pm_.Penalty(1, 2), 0.3333, 0.0005);
}

TEST_F(TableOnePenalty, MixedRefinementQ3) {
  // q3 = (2, {t1,t3}): dk = 1 (0.5 normalized), ddoc = 2/3 -> 0.5833.
  // (Table I prints the rounded 0.58.)
  EXPECT_NEAR(pm_.Penalty(2, 2), 0.5833, 0.0005);
}

TEST_F(TableOnePenalty, InsertOnlyRefinementQ4) {
  // q4 = (2, {t1,t2,t3}): dk = 1 (0.5), ddoc = 1/3 -> 0.41666 (~0.415).
  EXPECT_NEAR(pm_.Penalty(2, 1), 0.4167, 0.0005);
}

TEST(PenaltyModelTest, RankBelowK0CostsNothing) {
  const PenaltyModel pm(0.5, 10, 51, 5);
  EXPECT_DOUBLE_EQ(pm.KPenalty(1), 0.0);
  EXPECT_DOUBLE_EQ(pm.KPenalty(10), 0.0);
  EXPECT_GT(pm.KPenalty(11), 0.0);
}

TEST(PenaltyModelTest, BasicRefinementAlwaysCostsLambda) {
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const PenaltyModel pm(lambda, 10, 51, 7);
    EXPECT_DOUBLE_EQ(pm.Penalty(51, 0), lambda);
  }
}

TEST(PenaltyModelTest, Example4RankBound) {
  // Example 4: top-5 query, R(m,q) = 10, lambda = 0.5, p_c = 0.5,
  // (1-lambda) * ddoc/|doc0 ∪ m.doc| = 0.4 * 0.5 = 0.2 => R_L = 8.
  // The paper states ddoc/|doc0 ∪ m.doc| = 0.4 directly; use normalizer 5
  // and ddoc 2 to realize it.
  const PenaltyModel pm(0.5, 5, 10, 5);
  EXPECT_DOUBLE_EQ(pm.DocPenalty(2), 0.2);
  EXPECT_EQ(pm.RankUpperBound(0.5, 2), 8);
}

TEST(PenaltyModelTest, RankBoundZeroWhenDocPenaltyExceedsBest) {
  const PenaltyModel pm(0.5, 5, 10, 4);
  // DocPenalty(4) = 0.5; with best penalty 0.3 the candidate cannot win.
  EXPECT_LT(pm.RankUpperBound(0.3, 4), 1);
}

TEST(PenaltyModelTest, RankBoundUnlimitedWhenLambdaZero) {
  const PenaltyModel pm(0.0, 5, 10, 4);
  EXPECT_EQ(pm.RankUpperBound(0.5, 1), INT64_MAX);
}

TEST(PenaltyModelTest, PenaltyMonotoneInRankAndEdits) {
  const PenaltyModel pm(0.4, 10, 60, 8);
  EXPECT_LE(pm.Penalty(20, 2), pm.Penalty(30, 2));
  EXPECT_LE(pm.Penalty(20, 2), pm.Penalty(20, 3));
}

TEST(PenaltyModelTest, RankBoundConsistentWithPenalty) {
  // For every rank <= R_L the penalty is <= p_c; for rank R_L + 1 it
  // exceeds p_c.
  const PenaltyModel pm(0.6, 10, 51, 6);
  const double p_c = 0.45;
  for (uint64_t ed = 0; ed <= 4; ++ed) {
    const int64_t bound = pm.RankUpperBound(p_c, ed);
    if (bound < 1) {
      EXPECT_GT(pm.Penalty(11, ed), p_c);
      continue;
    }
    EXPECT_LE(pm.Penalty(static_cast<uint64_t>(bound), ed), p_c + 1e-12);
    EXPECT_GT(pm.Penalty(static_cast<uint64_t>(bound) + 1, ed), p_c);
  }
}

TEST(PenaltyModelTest, LambdaExtremes) {
  const PenaltyModel all_k(1.0, 5, 10, 4);
  EXPECT_DOUBLE_EQ(all_k.Penalty(10, 3), 1.0);  // only k matters
  EXPECT_DOUBLE_EQ(all_k.DocPenalty(4), 0.0);
  const PenaltyModel all_doc(0.0, 5, 10, 4);
  EXPECT_DOUBLE_EQ(all_doc.Penalty(10, 2), 0.5);  // only keywords matter
}

}  // namespace
}  // namespace wsk
