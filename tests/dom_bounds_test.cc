#include "index/dom_bounds.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "text/similarity.h"

namespace wsk {
namespace {

// A synthetic "node": concrete objects with locations inside an MBR, from
// which the kcm is derived. The exact dominator count is computed from the
// concrete objects; MaxDom/MinDom only ever see the aggregate summary.
struct SyntheticNode {
  Rect mbr;
  std::vector<Point> locs;
  std::vector<KeywordSet> docs;
  KeywordCountMap kcm;
};

SyntheticNode MakeNode(Rng& rng, uint32_t num_objects, uint32_t vocab) {
  SyntheticNode node;
  node.mbr = Rect{0.3, 0.3, 0.7, 0.7};
  for (uint32_t i = 0; i < num_objects; ++i) {
    node.locs.push_back(Point{rng.NextDouble(0.3, 0.7),
                              rng.NextDouble(0.3, 0.7)});
    std::vector<TermId> terms;
    for (TermId t = 0; t < vocab; ++t) {
      if (rng.NextBool(0.3)) terms.push_back(t);
    }
    node.docs.emplace_back(std::move(terms));
    node.kcm.AddDoc(node.docs.back());
    node.mbr.Extend(node.locs.back());
  }
  return node;
}

// Number of node objects whose score strictly exceeds the missing object's.
uint32_t ExactDominators(const SyntheticNode& node, const KeywordSet& s,
                         const DomContext& ctx, double tsim_missing) {
  const double missing_score = ctx.alpha * (1.0 - ctx.missing_sdist) +
                               (1.0 - ctx.alpha) * tsim_missing;
  uint32_t count = 0;
  for (size_t i = 0; i < node.locs.size(); ++i) {
    const double sdist =
        Distance(node.locs[i], ctx.query_loc) / ctx.diagonal;
    const double tsim = TextualSimilarity(node.docs[i], s);
    const double score =
        ctx.alpha * (1.0 - sdist) + (1.0 - ctx.alpha) * tsim;
    if (score > missing_score) ++count;
  }
  return count;
}

TEST(DomBoundsTest, ThresholdsOrdered) {
  const Rect mbr{0.2, 0.2, 0.8, 0.8};
  DomContext ctx;
  ctx.query_loc = Point{0.0, 0.0};
  ctx.alpha = 0.5;
  ctx.diagonal = 1.5;
  ctx.missing_sdist = 0.4;
  // MinDist <= MaxDist, so the low threshold never exceeds the high one.
  EXPECT_LE(DominatorThresholdLow(mbr, ctx, 0.3),
            DominatorThresholdHigh(mbr, ctx, 0.3));
}

TEST(DomBoundsTest, AllDominateWhenNodeStrictlyCloserAndMoreSimilar) {
  // Node hugging the query; missing object far with zero similarity.
  KeywordCountMap kcm;
  kcm.AddDoc(KeywordSet{0, 1});
  kcm.AddDoc(KeywordSet{0, 1});
  const Rect mbr{0.0, 0.0, 0.05, 0.05};
  const NodeDomStats stats(&kcm, 2, mbr);
  DomContext ctx;
  ctx.query_loc = Point{0.0, 0.0};
  ctx.alpha = 0.5;
  ctx.diagonal = 1.0;
  ctx.missing_sdist = 0.9;
  const KeywordSet s{0, 1};
  EXPECT_EQ(MaxDom(stats, s, 0.0, ctx), 2u);
  EXPECT_EQ(MinDom(stats, s, 0.0, ctx), 2u);
}

TEST(DomBoundsTest, NoneDominateWhenNodeHopeless) {
  // Node far away with disjoint keywords; missing object adjacent to the
  // query with perfect similarity.
  KeywordCountMap kcm;
  kcm.AddDoc(KeywordSet{5});
  const Rect mbr{0.9, 0.9, 1.0, 1.0};
  const NodeDomStats stats(&kcm, 1, mbr);
  DomContext ctx;
  ctx.query_loc = Point{0.0, 0.0};
  ctx.alpha = 0.5;
  ctx.diagonal = std::sqrt(2.0);
  ctx.missing_sdist = 0.0;
  const KeywordSet s{0, 1};
  EXPECT_EQ(MaxDom(stats, s, 1.0, ctx), 0u);
  EXPECT_EQ(MinDom(stats, s, 1.0, ctx), 0u);
}

TEST(DomBoundsTest, EmptyCandidateDominanceIsPurelySpatial) {
  KeywordCountMap kcm;
  kcm.AddDoc(KeywordSet{1});
  const NodeDomStats stats(&kcm, 1, Rect{0, 0, 1, 1});
  DomContext ctx;
  ctx.query_loc = Point{0.5, 0.5};
  ctx.alpha = 0.5;
  ctx.diagonal = 1.0;
  // Missing object far away: the node's object could still be closer, so
  // with TSim == 0 for everyone the upper bound must stay at cnt.
  ctx.missing_sdist = 0.5;
  EXPECT_EQ(MaxDom(stats, KeywordSet(), 0.0, ctx), 1u);
  // Missing object *at* the query location: nothing can be strictly closer
  // and textual similarity is 0 under an empty keyword set, so no object
  // can dominate.
  ctx.missing_sdist = 0.0;
  EXPECT_EQ(MaxDom(stats, KeywordSet(), 0.0, ctx), 0u);
}

TEST(DomBoundsTest, PaperExample5) {
  // Example 5: kcm {(t1,8),(t2,3),(t3,7),(t4,2),(t5,1)}, cnt=8, S={t3,t4},
  // threshold 0.395 -> MaxDom = 6. We reconstruct the setting by inverting
  // the threshold equation: with alpha=0.5, diagonal=1, MinDist=0 the
  // threshold reduces to tsim_m - sdist_m = 0.395.
  KeywordCountMap kcm;
  for (int i = 0; i < 8; ++i) {
    std::vector<TermId> terms;
    if (i < 8) terms.push_back(1);  // t1 count 8
    if (i < 3) terms.push_back(2);  // t2 count 3
    if (i < 7) terms.push_back(3);  // t3 count 7
    if (i < 2) terms.push_back(4);  // t4 count 2
    if (i < 1) terms.push_back(5);  // t5 count 1
    kcm.AddDoc(KeywordSet(std::move(terms)));
  }
  ASSERT_EQ(kcm.CountOf(1), 8u);
  ASSERT_EQ(kcm.CountOf(5), 1u);
  ASSERT_EQ(kcm.TotalCount(), 21u);
  const Rect mbr{0.0, 0.0, 1.0, 1.0};
  const NodeDomStats stats(&kcm, 8, mbr);
  DomContext ctx;
  ctx.query_loc = Point{0.5, 0.5};  // inside: MinDist = 0
  ctx.alpha = 0.5;
  ctx.diagonal = 1.0;
  ctx.missing_sdist = 0.0;
  const KeywordSet s{3, 4};
  // threshold L = 1*(0 - 0) + tsim_m; choose tsim_m = 0.395.
  EXPECT_EQ(MaxDom(stats, s, 0.395, ctx), 6u);
}

// The core soundness property: MinDom <= exact dominators <= MaxDom for
// random nodes, candidates, and missing objects.
class DomBoundsProperty : public ::testing::TestWithParam<double> {};

TEST_P(DomBoundsProperty, Soundness) {
  const double alpha = GetParam();
  Rng rng(static_cast<uint64_t>(alpha * 1000) + 3);
  for (int iter = 0; iter < 150; ++iter) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextUint64(30));
    SyntheticNode node = MakeNode(rng, n, 10);
    const NodeDomStats stats(&node.kcm, n, node.mbr);

    DomContext ctx;
    ctx.query_loc = Point{rng.NextDouble(), rng.NextDouble()};
    ctx.alpha = alpha;
    ctx.diagonal = 1.5;
    ctx.missing_sdist = rng.NextDouble();

    // Random candidate keyword set and missing-object similarity.
    std::vector<TermId> cand_terms;
    for (TermId t = 0; t < 12; ++t) {
      if (rng.NextBool(0.35)) cand_terms.push_back(t);
    }
    if (cand_terms.empty()) cand_terms.push_back(0);
    const KeywordSet s(std::move(cand_terms));
    // A plausible missing doc: random subset of the candidate + extras.
    std::vector<TermId> m_terms;
    for (TermId t = 0; t < 12; ++t) {
      if (rng.NextBool(0.4)) m_terms.push_back(t);
    }
    const KeywordSet m_doc(std::move(m_terms));
    const double tsim_m = TextualSimilarity(m_doc, s);

    const uint32_t exact = ExactDominators(node, s, ctx, tsim_m);
    const uint32_t max_dom = MaxDom(stats, s, tsim_m, ctx);
    const uint32_t min_dom = MinDom(stats, s, tsim_m, ctx);
    EXPECT_LE(min_dom, exact)
        << "iter " << iter << " n=" << n << " S=" << s.ToString();
    EXPECT_GE(max_dom, exact)
        << "iter " << iter << " n=" << n << " S=" << s.ToString();
    EXPECT_LE(min_dom, max_dom);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DomBoundsProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(DomBoundsTest, NodeDomStatsSuffixCounts) {
  KeywordCountMap kcm;
  kcm.AddDoc(KeywordSet{1, 2, 3});
  kcm.AddDoc(KeywordSet{1, 2});
  kcm.AddDoc(KeywordSet{1});
  const NodeDomStats stats(&kcm, 3, Rect{0, 0, 1, 1});
  EXPECT_EQ(stats.total_count(), 6u);
  EXPECT_EQ(stats.NumTermsGe(0), 3u);
  EXPECT_EQ(stats.NumTermsGe(1), 3u);
  EXPECT_EQ(stats.NumTermsGe(2), 2u);
  EXPECT_EQ(stats.NumTermsGe(3), 1u);
  EXPECT_EQ(stats.NumTermsGe(4), 0u);
  EXPECT_EQ(stats.CountOf(2), 2u);
}

}  // namespace
}  // namespace wsk
