#include "data/stats.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace wsk {
namespace {

TEST(StatsTest, EmptyDataset) {
  Dataset d;
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.num_objects, 0u);
  EXPECT_EQ(stats.num_distinct_terms, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_doc_length, 0.0);
}

TEST(StatsTest, HandComputedExample) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{0, 1});
  d.Add(Point{3, 4}, KeywordSet{1});
  d.Add(Point{1, 1}, KeywordSet{1, 2, 3});
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.num_objects, 3u);
  EXPECT_EQ(stats.num_distinct_terms, 0u);  // no vocabulary records: the
  // keyword sets were added directly without interning, so df stays 0.
  EXPECT_EQ(stats.total_term_occurrences, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_doc_length, 2.0);
  EXPECT_EQ(stats.min_doc_length, 1u);
  EXPECT_EQ(stats.max_doc_length, 3u);
  EXPECT_DOUBLE_EQ(stats.diagonal, 5.0);
}

TEST(StatsTest, DistinctTermsTrackDocumentFrequencies) {
  Dataset d;
  d.Add(Point{0, 0}, {"pizza", "wifi"});
  d.Add(Point{1, 0}, {"pizza"});
  d.Add(Point{0, 1}, {"sushi"});
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.num_distinct_terms, 3u);
  EXPECT_EQ(stats.max_document_frequency, 2u);  // "pizza"
  EXPECT_EQ(stats.total_term_occurrences, 4u);
}

TEST(StatsTest, GeneratorMatchesItsConfig) {
  GeneratorConfig config;
  config.num_objects = 1000;
  config.vocab_size = 200;
  config.doc_size_mean = 5.0;
  const Dataset d = GenerateDataset(config);
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.num_objects, 1000u);
  EXPECT_LE(stats.num_distinct_terms, 200u);
  EXPECT_NEAR(stats.avg_doc_length, 5.0, 0.5);
  // Zipf skew: the top-10 terms carry a large share of all occurrences.
  EXPECT_GT(stats.top10_frequency_share, 0.2);
}

TEST(StatsTest, ToStringMentionsTheKeyNumbers) {
  Dataset d;
  d.Add(Point{0, 0}, {"alpha"});
  const std::string text = ComputeStats(d).ToString();
  EXPECT_NE(text.find("Total # of objects        1"), std::string::npos);
  EXPECT_NE(text.find("distinct words 1"), std::string::npos);
}

}  // namespace
}  // namespace wsk
