#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace wsk {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
  // bound 1 always yields 0
  EXPECT_EQ(rng.NextUint64(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  const double mean = 5.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
  EXPECT_NEAR(sum / n, mean, 0.1);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(31);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(37);
  std::vector<int> counts(1000, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 should be roughly twice as frequent as rank 1 and far more
  // frequent than deep ranks.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 20 * std::max(1, counts[500]));
}

TEST(ZipfTest, SamplesWithinUniverse) {
  ZipfSampler zipf(7, 1.5);
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace wsk
