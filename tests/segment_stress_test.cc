// Concurrent ingest stress (docs/SEGMENTS.md): writer threads mutate while
// reader threads query and the background worker compacts. Runs under TSan
// in CI via the `stress` label. Checks:
//   * readers never observe torn state (top-k is well-formed and every
//     returned id resolves in the reader's own snapshot),
//   * aggregate I/O counters are monotone across merges and retirements
//     (no dip, no double count),
//   * after the dust settles the engine matches a brute-force rebuild of
//     the logically-final object set, document frequencies included,
//   * epoch reclamation actually retires superseded segments.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/query.h"
#include "segment/segmented_engine.h"

namespace wsk {
namespace {

constexpr int kNumWriters = 2;
constexpr int kNumReaders = 2;
constexpr int kOpsPerWriter = 1500;
constexpr int kSeedObjects = 200;

std::vector<std::string> KeywordsFor(uint64_t v) {
  return {"base", "w" + std::to_string(v % 12),
          "w" + std::to_string((v / 12) % 12)};
}

Point LocationFor(uint64_t v) {
  return Point{static_cast<double>(v % 37) * 0.5,
               static_cast<double>((v / 37) % 37) * 0.5};
}

struct ObjectRecord {
  Point loc;
  std::vector<std::string> keywords;
};

TEST(SegmentStressTest, ConcurrentIngestQueriesAndMerge) {
  Dataset seed;
  for (int i = 0; i < kSeedObjects; ++i) {
    seed.Add(LocationFor(i * 7 + 1), KeywordsFor(i * 13 + 5));
  }
  SpatialKeywordQuery query;
  query.loc = Point{9.0, 9.0};
  query.doc = seed.vocabulary().InternAll({"base", "w3"});
  query.k = 10;

  SegmentedEngine::Config config;
  config.node_capacity = 16;
  config.delta_capacity = 64;  // frequent rotations -> frequent merges
  config.auto_merge = true;
  StatusOr<std::unique_ptr<SegmentedEngine>> built =
      SegmentedEngine::Build(seed, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SegmentedEngine* engine = built.value().get();

  std::atomic<bool> writers_done{false};
  std::atomic<int> failures{0};
  const auto note_failure = [&failures](const char* what) {
    ADD_FAILURE() << what;
    failures.fetch_add(1);
  };

  // Writers only mutate objects they inserted themselves, so each local
  // ledger is exact without cross-thread coordination.
  std::vector<std::map<ObjectId, ObjectRecord>> ledgers(kNumWriters);
  std::vector<uint64_t> writer_inserts(kNumWriters, 0);
  std::vector<uint64_t> writer_updates(kNumWriters, 0);
  std::vector<uint64_t> writer_deletes(kNumWriters, 0);

  std::vector<std::thread> threads;
  for (int w = 0; w < kNumWriters; ++w) {
    threads.emplace_back([&, w]() {
      Rng rng(0x5eed0000 + w);
      std::map<ObjectId, ObjectRecord>& mine = ledgers[w];
      std::vector<ObjectId> live;
      for (int op = 0; op < kOpsPerWriter; ++op) {
        const uint64_t r = rng.Next();
        const int kind = live.empty() ? 0 : static_cast<int>(r % 4);
        if (kind <= 1) {  // insert
          const ObjectRecord record{LocationFor(r >> 8),
                                    KeywordsFor(r >> 20)};
          StatusOr<ObjectId> id =
              engine->Insert(record.loc, record.keywords);
          if (!id.ok()) {
            note_failure("insert failed");
            return;
          }
          mine[id.value()] = record;
          live.push_back(id.value());
          ++writer_inserts[w];
        } else if (kind == 2) {  // update one of ours
          const ObjectId id = live[(r >> 8) % live.size()];
          const ObjectRecord record{LocationFor(r >> 16),
                                    KeywordsFor(r >> 28)};
          if (!engine->Update(id, record.loc, record.keywords).ok()) {
            note_failure("update failed");
            return;
          }
          mine[id] = record;
          ++writer_updates[w];
        } else {  // delete one of ours
          const size_t pos = (r >> 8) % live.size();
          const ObjectId id = live[pos];
          live.erase(live.begin() + pos);
          if (!engine->Delete(id).ok()) {
            note_failure("delete failed");
            return;
          }
          mine.erase(id);
          ++writer_deletes[w];
        }
      }
    });
  }

  for (int r = 0; r < kNumReaders; ++r) {
    threads.emplace_back([&, r]() {
      Rng rng(0xbeef0000 + r);
      BackendIoSnapshot last_io = engine->io_snapshot();
      // A floor of iterations guarantees real overlap even if the writers
      // outpace reader startup.
      for (int iter = 0;
           iter < 50 || !writers_done.load(std::memory_order_acquire);
           ++iter) {
        // A top-k must be well-formed and internally consistent with the
        // reader's own snapshot semantics.
        StatusOr<std::vector<ScoredObject>> topk = engine->TopK(query);
        if (!topk.ok()) {
          note_failure("top-k failed mid-ingest");
          return;
        }
        const std::vector<ScoredObject>& results = topk.value();
        if (results.size() > query.k) {
          note_failure("top-k returned more than k results");
          return;
        }
        for (size_t i = 1; i < results.size(); ++i) {
          const bool ordered =
              results[i - 1].score > results[i].score ||
              (results[i - 1].score == results[i].score &&
               results[i - 1].id < results[i].id);
          if (!ordered) {
            note_failure("top-k order violated (torn read?)");
            return;
          }
        }
        // Seed ids below the writers' range are never mutated: always
        // resolvable in any snapshot.
        const SnapshotStore store(&engine->vocabulary(),
                                  engine->GetSnapshot());
        const ObjectId probe =
            static_cast<ObjectId>(rng.Next() % kSeedObjects);
        if (store.FindObject(probe) == nullptr) {
          note_failure("seed object vanished from a snapshot");
          return;
        }
        // Aggregate I/O counters never dip, even while merges retire
        // segments concurrently.
        const BackendIoSnapshot io = engine->io_snapshot();
        if (io.setr_physical < last_io.setr_physical ||
            io.kcr_physical < last_io.kcr_physical ||
            io.setr_logical < last_io.setr_logical ||
            io.kcr_logical < last_io.kcr_logical) {
          note_failure("I/O counters dipped across a merge");
          return;
        }
        last_io = io;
      }
    });
  }

  for (int i = 0; i < kNumWriters; ++i) threads[i].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kNumWriters; i < threads.size(); ++i) threads[i].join();
  ASSERT_EQ(failures.load(), 0);

  ASSERT_TRUE(engine->ForceMerge().ok());

  // Counters reconcile exactly with the writers' ledgers.
  uint64_t total_inserts = 0, total_updates = 0, total_deletes = 0;
  size_t expected_live = kSeedObjects;
  for (int w = 0; w < kNumWriters; ++w) {
    total_inserts += writer_inserts[w];
    total_updates += writer_updates[w];
    total_deletes += writer_deletes[w];
    expected_live += ledgers[w].size();
  }
  const SegmentCountersSnapshot counters = engine->segment_counters();
  ASSERT_TRUE(counters.valid);
  EXPECT_EQ(counters.inserts, total_inserts);
  EXPECT_EQ(counters.updates, total_updates);
  EXPECT_EQ(counters.deletes, total_deletes);
  EXPECT_EQ(counters.live_objects, expected_live);
  EXPECT_EQ(counters.frozen_segments, 1u);
  EXPECT_EQ(counters.delta_objects, 0u);
  // Compaction ran and epoch reclamation retired the superseded segments.
  EXPECT_GE(counters.merges, 1u);
  EXPECT_GE(counters.segments_retired, counters.merges);

  // Final differential check: rebuild the logically-final dataset from the
  // ledgers and compare answers bit for bit.
  Dataset reference;
  reference.vocabulary() = engine->vocabulary().CloneDictionary();
  reference.OverrideDiagonal(engine->diagonal());
  std::map<ObjectId, ObjectRecord> final_state;
  for (int i = 0; i < kSeedObjects; ++i) {
    final_state[static_cast<ObjectId>(i)] =
        ObjectRecord{LocationFor(i * 7 + 1), KeywordsFor(i * 13 + 5)};
  }
  for (const auto& ledger : ledgers) {
    for (const auto& [id, record] : ledger) final_state[id] = record;
  }
  for (const auto& [id, record] : final_state) {
    reference.AddWithId(id, record.loc,
                        reference.vocabulary().InternAll(record.keywords));
  }
  EXPECT_EQ(engine->vocabulary().DocumentFrequencies(),
            reference.vocabulary().DocumentFrequencies());

  StatusOr<std::vector<ScoredObject>> got = engine->TopK(query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const std::vector<ScoredObject> want = BruteForceTopK(reference, query);
  ASSERT_EQ(got.value().size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.value()[i].id, want[i].id) << "position " << i;
    EXPECT_EQ(got.value()[i].score, want[i].score) << "position " << i;
  }
}

}  // namespace
}  // namespace wsk
