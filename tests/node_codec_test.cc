#include "index/node_codec.h"

#include <cstring>
#include <utility>

#include <gtest/gtest.h>

#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

TEST(ByteCodecTest, WriterReaderRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter writer(&buf);
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutDouble(3.25);
  writer.PutRect(Rect{1, 2, 3, 4});
  const uint8_t blob[3] = {9, 8, 7};
  writer.PutBytes(blob, sizeof(blob));
  EXPECT_EQ(writer.size(), 1u + 4 + 8 + 8 + 32 + 3);

  ByteReader reader(buf.data(), buf.size());
  EXPECT_EQ(reader.GetU8(), 0xab);
  EXPECT_EQ(reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(reader.GetDouble(), 3.25);
  EXPECT_EQ(reader.GetRect(), (Rect{1, 2, 3, 4}));
  const uint8_t* read_blob = reader.GetBytes(3);
  EXPECT_EQ(read_blob[0], 9);
  EXPECT_EQ(read_blob[2], 7);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteCodecTest, WriterAppendsToExistingBuffer) {
  std::vector<uint8_t> buf{1, 2, 3};
  ByteWriter writer(&buf);
  writer.PutU8(4);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[3], 4);
}

TEST(NodeBytesTest, MultiPageRoundTrip) {
  TempFile file("node_codec");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);

  const uint32_t pages = 3;
  const PageId first = pager->AllocatePages(pages);
  std::vector<uint8_t> data(128 * pages);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(WriteNodeBytes(&pool, first, pages, data.data()).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.InvalidateAll().ok());

  std::vector<uint8_t> back;
  ASSERT_TRUE(ReadNodeBytes(&pool, first, pages, &back).ok());
  EXPECT_EQ(back, data);
}

TEST(NodeBytesTest, ReadCostsOneFetchPerPage) {
  TempFile file("node_codec_io");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);
  const PageId first = pager->AllocatePages(4);
  std::vector<uint8_t> data(128 * 4, 0x5c);
  ASSERT_TRUE(WriteNodeBytes(&pool, first, 4, data.data()).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.InvalidateAll().ok());
  pager->io_stats().Reset();
  std::vector<uint8_t> back;
  ASSERT_TRUE(ReadNodeBytes(&pool, first, 4, &back).ok());
  EXPECT_EQ(pager->io_stats().physical_reads(), 4u);
  // Cached second read: no physical I/O.
  ASSERT_TRUE(ReadNodeBytes(&pool, first, 4, &back).ok());
  EXPECT_EQ(pager->io_stats().physical_reads(), 4u);
}

TEST(NodeViewTest, SinglePageIsZeroCopy) {
  TempFile file("node_view_single");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);
  const PageId page = pager->AllocatePages(1);
  std::vector<uint8_t> data(128);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  ASSERT_TRUE(WriteNodeBytes(&pool, page, 1, data.data()).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.InvalidateAll().ok());

  StatusOr<NodeView> view = NodeView::Read(&pool, page, 1);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // The single-page path borrows the pinned frame: no scratch copy.
  EXPECT_TRUE(view.value().zero_copy());
  ASSERT_EQ(view.value().size(), 128u);
  EXPECT_EQ(std::memcmp(view.value().data(), data.data(), data.size()), 0);

  // The borrowed span IS the buffer-pool frame, not a copy.
  PageHandle pinned = pool.Fetch(page).value();
  EXPECT_EQ(view.value().data(), pinned.data());
}

TEST(NodeViewTest, MultiPageGathersIntoOwnedCopy) {
  TempFile file("node_view_multi");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);
  const uint32_t pages = 3;
  const PageId first = pager->AllocatePages(pages);
  std::vector<uint8_t> data(128 * pages);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(WriteNodeBytes(&pool, first, pages, data.data()).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.InvalidateAll().ok());

  StatusOr<NodeView> view = NodeView::Read(&pool, first, pages);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value().zero_copy());
  ASSERT_EQ(view.value().size(), data.size());
  EXPECT_EQ(std::memcmp(view.value().data(), data.data(), data.size()), 0);
}

TEST(NodeViewTest, MoveKeepsSpanValid) {
  TempFile file("node_view_move");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);
  const PageId page = pager->AllocatePages(1);
  std::vector<uint8_t> data(128, 0x3e);
  ASSERT_TRUE(WriteNodeBytes(&pool, page, 1, data.data()).ok());

  NodeView view = NodeView::Read(&pool, page, 1).value();
  const uint8_t* span = view.data();
  NodeView moved = std::move(view);
  EXPECT_TRUE(moved.zero_copy());
  EXPECT_EQ(moved.data(), span);  // the pin moved with the view
  EXPECT_EQ(moved.data()[0], 0x3e);
}

TEST(NodeBytesTest, ReadErrorPropagates) {
  TempFile file("node_codec_err");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 8);
  const PageId first = pager->AllocatePages(2);
  pager->set_read_fault_hook(
      [](PageId) { return Status::IoError("injected"); });
  std::vector<uint8_t> back;
  EXPECT_EQ(ReadNodeBytes(&pool, first, 2, &back).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace wsk
