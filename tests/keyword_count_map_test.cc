#include "index/keyword_count_map.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsk {
namespace {

TEST(KeywordCountMapTest, FromDocHasUnitCounts) {
  const auto map = KeywordCountMap::FromDoc(KeywordSet{3, 1, 7});
  EXPECT_EQ(map.num_terms(), 3u);
  EXPECT_EQ(map.CountOf(1), 1u);
  EXPECT_EQ(map.CountOf(3), 1u);
  EXPECT_EQ(map.CountOf(7), 1u);
  EXPECT_EQ(map.CountOf(2), 0u);
  EXPECT_EQ(map.TotalCount(), 3u);
}

TEST(KeywordCountMapTest, AddDocAccumulates) {
  KeywordCountMap map;
  map.AddDoc(KeywordSet{1, 2});
  map.AddDoc(KeywordSet{2, 3});
  map.AddDoc(KeywordSet{2});
  EXPECT_EQ(map.CountOf(1), 1u);
  EXPECT_EQ(map.CountOf(2), 3u);
  EXPECT_EQ(map.CountOf(3), 1u);
  EXPECT_EQ(map.TotalCount(), 5u);
}

TEST(KeywordCountMapTest, MergeAddsCounts) {
  KeywordCountMap a;
  a.AddDoc(KeywordSet{1, 2});
  KeywordCountMap b;
  b.AddDoc(KeywordSet{2, 3});
  a.Merge(b);
  EXPECT_EQ(a.CountOf(1), 1u);
  EXPECT_EQ(a.CountOf(2), 2u);
  EXPECT_EQ(a.CountOf(3), 1u);
  EXPECT_TRUE(b == KeywordCountMap::FromDoc(KeywordSet{2, 3}));
}

TEST(KeywordCountMapTest, PairsStaySorted) {
  KeywordCountMap map;
  map.AddDoc(KeywordSet{9, 1});
  map.AddDoc(KeywordSet{5});
  TermId prev = 0;
  bool first = true;
  for (const auto& [term, count] : map.pairs()) {
    if (!first) EXPECT_GT(term, prev);
    prev = term;
    first = false;
  }
}

TEST(KeywordCountMapTest, SerializationRoundTrip) {
  KeywordCountMap map;
  map.AddDoc(KeywordSet{1, 5, 9});
  map.AddDoc(KeywordSet{5});
  std::vector<uint8_t> bytes;
  map.Serialize(&bytes);
  EXPECT_EQ(bytes.size(), map.SerializedSize());
  const auto back = KeywordCountMap::Deserialize(bytes.data(), bytes.size());
  EXPECT_TRUE(back == map);

  const KeywordCountMap empty;
  bytes.clear();
  empty.Serialize(&bytes);
  EXPECT_TRUE(KeywordCountMap::Deserialize(bytes.data(), bytes.size()) ==
              empty);
}

// Property: merging maps built from random docs equals building one map
// from the concatenation.
TEST(KeywordCountMapTest, MergeEquivalentToBatchedAdd) {
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<KeywordSet> docs;
    for (int d = 0; d < 8; ++d) {
      std::vector<TermId> terms;
      for (TermId t = 0; t < 10; ++t) {
        if (rng.NextBool(0.4)) terms.push_back(t);
      }
      docs.emplace_back(std::move(terms));
    }
    KeywordCountMap all;
    KeywordCountMap left, right;
    for (size_t d = 0; d < docs.size(); ++d) {
      all.AddDoc(docs[d]);
      (d < 4 ? left : right).AddDoc(docs[d]);
    }
    left.Merge(right);
    EXPECT_TRUE(left == all);
  }
}

}  // namespace
}  // namespace wsk
