#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace wsk {
namespace {

TEST(ThreadPoolTest, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  EXPECT_EQ(counter, 1);  // no Wait needed in inline mode
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 60; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace wsk
