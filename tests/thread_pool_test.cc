#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>

namespace wsk {
namespace {

TEST(ThreadPoolTest, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  EXPECT_EQ(counter, 1);  // no Wait needed in inline mode
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 60; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ThrowingTaskIsSwallowedAndCounted) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([] { throw 42; });  // non-std exceptions are caught too
  pool.Submit([&] { after.fetch_add(1); });
  pool.Wait();
  // The pool survives both throws: workers keep running later tasks and
  // the failures are surfaced through the counter.
  EXPECT_EQ(after.load(), 1);
  EXPECT_EQ(pool.num_task_exceptions(), 2u);
}

TEST(ThreadPoolTest, InlineModeAlsoCountsExceptions) {
  ThreadPool pool(0);
  pool.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_EQ(pool.num_task_exceptions(), 1u);
}

TEST(ThreadPoolTest, TrySubmitHonorsQueueLimit) {
  ThreadPool pool(1, /*queue_limit=*/2);
  // Block the only worker so queued tasks cannot drain.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> ran{0};
  pool.Submit([gate, &ran] {
    gate.wait();
    ran.fetch_add(1);
  });
  // Wait until the worker has dequeued the blocker (queue drains to 0).
  while (pool.queue_depth() != 0) std::this_thread::yield();

  EXPECT_TRUE(pool.TrySubmit([gate, &ran] { gate.wait(); ran.fetch_add(1); }));
  EXPECT_TRUE(pool.TrySubmit([gate, &ran] { gate.wait(); ran.fetch_add(1); }));
  // Queue is now at its limit of 2: bounded submission is refused...
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // ...while unbounded Submit still accepts (algorithm-internal fan-out
  // must never be shed by the service's admission bound).
  pool.Submit([gate, &ran] { gate.wait(); ran.fetch_add(1); });
  EXPECT_EQ(pool.queue_depth(), 3u);

  release.set_value();
  pool.Wait();
  EXPECT_EQ(ran.load(), 4);  // everything accepted eventually ran
}

TEST(ThreadPoolTest, TrySubmitUnlimitedWhenNoQueueLimit) {
  ThreadPool pool(1);  // queue_limit = 0: unbounded
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.TrySubmit([gate, &ran] {
      gate.wait();
      ran.fetch_add(1);
    }));
  }
  release.set_value();
  pool.Wait();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, InlineModeTrySubmitAlwaysAccepts) {
  ThreadPool pool(0, /*queue_limit=*/1);
  int counter = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&] { ++counter; }));
  }
  EXPECT_EQ(counter, 5);  // nothing ever queues inline
}

}  // namespace
}  // namespace wsk
