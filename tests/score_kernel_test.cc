// Correctness contract of the candidate-scoring kernel (docs/PERF.md):
// every kernel score must be bit-identical to the scalar
// TextualSimilarity(doc, candidate, model) it replaces — exact double
// equality, not approximate — across all three similarity models, universe
// sizes from 1 to the 64-term cap, and documents that extend beyond the
// universe. Plus the same contract for the mask-based MaxDom/MinDom
// overloads against their KeywordSet originals.
#include "text/score_kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "index/dom_bounds.h"
#include "text/keyword_set.h"
#include "text/similarity.h"

namespace wsk {
namespace {

constexpr SimilarityModel kModels[] = {
    SimilarityModel::kJaccard, SimilarityModel::kDice,
    SimilarityModel::kOverlap};

KeywordSet RandomSet(Rng& rng, uint32_t vocab, double p) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < vocab; ++t) {
    if (rng.NextBool(p)) terms.push_back(t);
  }
  return KeywordSet(std::move(terms));
}

// Random subset of `universe` (possibly empty).
KeywordSet RandomSubset(Rng& rng, const KeywordSet& universe, double p) {
  std::vector<TermId> terms;
  for (TermId t : universe) {
    if (rng.NextBool(p)) terms.push_back(t);
  }
  return KeywordSet(std::move(terms));
}

// 10k+ random (footprint, candidate) pairs per model, exact equality.
TEST(ScoreKernelTest, BitIdenticalToScalarSimilarity) {
  Rng rng(20160777);
  uint64_t pairs = 0;
  for (const size_t universe_size : {1u, 3u, 8u, 20u, 40u, 64u}) {
    for (int rep = 0; rep < 14; ++rep) {
      // Universe terms drawn sparsely from a larger vocabulary so documents
      // routinely contain terms outside the universe.
      std::vector<TermId> uterms;
      TermId next = 0;
      while (uterms.size() < universe_size) {
        next += 1 + static_cast<TermId>(rng.NextUint64(5));
        uterms.push_back(next);
      }
      const KeywordSet universe_set(std::move(uterms));
      const CandidateUniverse universe = CandidateUniverse::Build(universe_set);
      ASSERT_TRUE(universe.valid());

      std::vector<KeywordSet> cands;
      std::vector<CandidateMask> masks;
      cands.push_back(KeywordSet());  // empty candidate -> mask 0
      cands.push_back(universe_set);  // the full universe
      for (int c = 0; c < 14; ++c) {
        cands.push_back(RandomSubset(rng, universe_set, rng.NextDouble()));
      }
      for (const KeywordSet& cand : cands) {
        masks.push_back(universe.MaskOf(cand));
      }
      EXPECT_EQ(masks[0], CandidateMask{0});
      EXPECT_EQ(masks[1], universe.FullMask());

      std::vector<KeywordSet> docs;
      docs.push_back(KeywordSet());  // empty document
      for (int d = 0; d < 7; ++d) {
        // Union of universe terms and out-of-universe terms.
        docs.push_back(RandomSubset(rng, universe_set, rng.NextDouble())
                           .Union(RandomSet(rng, 40, rng.NextDouble() * 0.4)));
      }
      for (const KeywordSet& doc : docs) {
        const Footprint fp = universe.FootprintOf(doc);
        ASSERT_EQ(fp.doc_size, doc.size());
        for (const SimilarityModel model : kModels) {
          std::vector<double> batch;
          ScoreAllCandidates(fp, masks, model, &batch);
          for (size_t c = 0; c < cands.size(); ++c) {
            const double scalar = TextualSimilarity(doc, cands[c], model);
            const double kernel = ScoreCandidate(fp, masks[c], model);
            ASSERT_EQ(kernel, scalar)
                << "model " << SimilarityModelName(model) << " universe "
                << universe_set.ToString() << " doc " << doc.ToString()
                << " cand " << cands[c].ToString();
            ASSERT_EQ(batch[c], scalar) << "batched score drifted";
            ++pairs;
          }
        }
      }
    }
  }
  // The contract covers a meaningful sample: >= 10k pairs per model.
  EXPECT_GE(pairs, 3u * 10000u);
}

TEST(ScoreKernelTest, UniverseOverCapIsInvalid) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < 65; ++t) terms.push_back(t);
  const CandidateUniverse over = CandidateUniverse::Build(KeywordSet(terms));
  EXPECT_FALSE(over.valid());

  terms.pop_back();
  const CandidateUniverse at_cap = CandidateUniverse::Build(KeywordSet(terms));
  EXPECT_TRUE(at_cap.valid());
  EXPECT_EQ(at_cap.size(), kMaxUniverseTerms);
  EXPECT_EQ(at_cap.FullMask(), ~CandidateMask{0});
}

TEST(ScoreKernelTest, DefaultConstructedUniverseIsInvalid) {
  const CandidateUniverse u;
  EXPECT_FALSE(u.valid());
}

TEST(ScoreKernelTest, EmptyUniverse) {
  const CandidateUniverse u = CandidateUniverse::Build(KeywordSet());
  ASSERT_TRUE(u.valid());
  EXPECT_EQ(u.size(), 0u);
  EXPECT_EQ(u.FullMask(), CandidateMask{0});
  const Footprint fp = u.FootprintOf(KeywordSet{1, 2});
  EXPECT_EQ(fp.mask, CandidateMask{0});
  EXPECT_EQ(fp.doc_size, 2u);
  // Empty candidate vs non-empty doc: similarity 0 under every model.
  for (const SimilarityModel model : kModels) {
    EXPECT_EQ(ScoreCandidate(fp, 0, model),
              TextualSimilarity(KeywordSet{1, 2}, KeywordSet(), model));
  }
}

TEST(ScoreKernelTest, FootprintGallopingPathMatchesLinear) {
  // A long document versus a tiny universe exercises the galloping branch
  // of FootprintOf (doc > 8x universe); cross-check the mask bit by bit.
  Rng rng(99);
  const KeywordSet universe_set{10, 200, 3000, 40000};
  const CandidateUniverse universe = CandidateUniverse::Build(universe_set);
  std::vector<TermId> terms;
  for (int i = 0; i < 500; ++i) {
    terms.push_back(static_cast<TermId>(rng.NextUint64(50000)));
  }
  terms.push_back(200);    // guarantee one hit
  terms.push_back(40000);  // and the last universe term
  const KeywordSet doc(std::move(terms));
  ASSERT_GT(doc.size(), 8 * universe_set.size());
  const Footprint fp = universe.FootprintOf(doc);
  EXPECT_EQ(fp.doc_size, doc.size());
  for (size_t i = 0; i < universe.size(); ++i) {
    EXPECT_EQ((fp.mask >> i) & 1, doc.Contains(universe.term(i)) ? 1u : 0u);
  }
}

// The mask-based MaxDom/MinDom must agree exactly with the KeywordSet
// overloads for every candidate of a universe: same counts, same
// arithmetic, same bounds.
TEST(ScoreKernelTest, DomBoundOverloadsMatchKeywordSetPath) {
  Rng rng(4451);
  for (int iter = 0; iter < 60; ++iter) {
    KeywordCountMap kcm;
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextUint64(24));
    for (uint32_t i = 0; i < n; ++i) {
      kcm.AddDoc(RandomSet(rng, 16, 0.3));
    }
    const NodeDomStats stats(&kcm, n, Rect{0.2, 0.2, 0.8, 0.8});

    const KeywordSet universe_set = RandomSet(rng, 16, 0.6);
    if (universe_set.empty()) continue;
    const CandidateUniverse universe = CandidateUniverse::Build(universe_set);
    const NodeUniverseCounts uc = NodeUniverseCounts::Build(stats, universe);

    DomContext ctx;
    ctx.query_loc = Point{rng.NextDouble(), rng.NextDouble()};
    ctx.alpha = rng.NextDouble(0.1, 0.9);
    ctx.diagonal = 1.5;
    ctx.missing_sdist = rng.NextDouble();

    for (int c = 0; c < 12; ++c) {
      const KeywordSet cand = RandomSubset(rng, universe_set, 0.5);
      const CandidateMask mask = universe.MaskOf(cand);
      const double tsim_m = rng.NextDouble();
      EXPECT_EQ(MaxDom(stats, cand, tsim_m, ctx),
                MaxDom(stats, uc, mask, static_cast<uint32_t>(cand.size()),
                       tsim_m, ctx))
          << "universe " << universe_set.ToString() << " cand "
          << cand.ToString();
      EXPECT_EQ(MinDom(stats, cand, tsim_m, ctx),
                MinDom(stats, uc, mask, static_cast<uint32_t>(cand.size()),
                       tsim_m, ctx))
          << "universe " << universe_set.ToString() << " cand "
          << cand.ToString();
    }
  }
}

}  // namespace
}  // namespace wsk
