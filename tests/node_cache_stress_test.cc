// Concurrent hit/evict stress for NodeCache (run under TSan via the
// `stress` label). Many threads hammer a cache far smaller than the key
// space, so lookups, inserts, capacity evictions, and invalidations all
// interleave; fingerprint verification is forced on so any payload
// corruption aborts the run.
#include "storage/node_cache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wsk {
namespace {

uint64_t FingerprintPayload(const void* value) {
  const auto* v = static_cast<const std::vector<uint64_t>*>(value);
  FingerprintHasher hasher;
  hasher.MixU64(v->size());
  hasher.Mix(v->data(), v->size() * sizeof(uint64_t));
  return hasher.digest();
}

TEST(NodeCacheStressTest, ConcurrentHitEvictInvalidate) {
  // 4 shards x ~6 resident entries vs 256 keys: constant eviction churn.
  constexpr size_t kCapacity = 24 * 100;
  constexpr uint32_t kKeys = 256;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;

  NodeCache cache(kCapacity, /*num_shards=*/4);
  cache.set_verify_fingerprints(true);

  std::atomic<uint64_t> observed_hits{0};
  auto worker = [&](uint32_t thread_id) {
    uint64_t rng = 0x9e3779b97f4a7c15ull * (thread_id + 1);
    auto next = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < kOpsPerThread; ++i) {
      const uint32_t key = static_cast<uint32_t>(next() % kKeys);
      const uint64_t op = next() % 100;
      if (op < 70) {  // lookup, decode-on-miss
        auto hit = cache.LookupAs<std::vector<uint64_t>>(1, key);
        if (hit != nullptr) {
          // The payload a reader holds is immutable and keyed by content.
          ASSERT_EQ(hit->size(), 8u);
          ASSERT_EQ((*hit)[0], key);
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          auto payload = std::make_shared<std::vector<uint64_t>>(8, key);
          cache.Insert(1, key, payload, 100, &FingerprintPayload);
        }
      } else if (op < 95) {  // plain insert race
        auto payload = std::make_shared<std::vector<uint64_t>>(8, key);
        cache.Insert(1, key, payload, 100, &FingerprintPayload);
      } else if (op < 99) {
        cache.Erase(1, key);
      } else {
        cache.EraseTree(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, static_cast<uint32_t>(t));
  }
  for (std::thread& t : threads) t.join();

  const NodeCache::Stats stats = cache.GetStats();
  // The byte budget must hold after arbitrary interleaving.
  EXPECT_LE(stats.bytes_in_use, cache.capacity_bytes());
  EXPECT_EQ(stats.bytes_in_use, stats.entries * 100);
  // The workload is designed to actually exercise hits and evictions.
  EXPECT_GT(observed_hits.load(), 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.hits, observed_hits.load());
}

}  // namespace
}  // namespace wsk
