#include "index/setr_tree.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "data/generator.h"
#include "index/topk.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

struct TreeBundle {
  std::unique_ptr<TempFile> file;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<SetRTree> tree;
};

TreeBundle BulkLoad(const Dataset& dataset, uint32_t capacity = 8) {
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("setr");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = capacity;
  bundle.tree =
      SetRTree::BulkLoad(dataset, bundle.pool.get(), options).value();
  return bundle;
}

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 40;
  config.seed = seed;
  return GenerateDataset(config);
}

// Recursively validates the structural invariants of the SetR-tree: every
// inner entry's MBR contains its subtree, its union set equals the union of
// the subtree's keyword sets, and its intersection set the intersection.
struct SubtreeFacts {
  Rect mbr;
  KeywordSet uni;
  KeywordSet inter;
  size_t objects = 0;
};

SubtreeFacts CheckSubtree(const SetRTree& tree, const Dataset& dataset,
                          PageId page) {
  SubtreeFacts facts;
  const SetRTree::Node node = tree.ReadNode(page).value();
  EXPECT_GE(node.size(), 1u);
  EXPECT_LE(node.size(), tree.options().capacity);
  bool first = true;
  if (node.is_leaf) {
    for (const SetRTree::LeafEntry& e : node.leaf_entries) {
      const KeywordSet doc = tree.ReadKeywordSet(e.keywords).value();
      EXPECT_EQ(doc, dataset.object(e.object).doc);
      EXPECT_EQ(e.loc, dataset.object(e.object).loc);
      facts.mbr.Extend(e.loc);
      facts.uni = facts.uni.Union(doc);
      facts.inter = first ? doc : facts.inter.Intersect(doc);
      facts.objects += 1;
      first = false;
    }
  } else {
    for (const SetRTree::InnerEntry& e : node.inner_entries) {
      const SubtreeFacts child = CheckSubtree(tree, dataset, e.child);
      EXPECT_TRUE(e.mbr.ContainsRect(child.mbr));
      EXPECT_EQ(tree.ReadKeywordSet(e.union_set).value(), child.uni);
      EXPECT_EQ(tree.ReadKeywordSet(e.inter_set).value(), child.inter);
      facts.mbr.Extend(child.mbr);
      facts.uni = facts.uni.Union(child.uni);
      facts.inter = first ? child.inter : facts.inter.Intersect(child.inter);
      facts.objects += child.objects;
      first = false;
    }
  }
  return facts;
}

TEST(SetRTreeTest, BulkLoadStructuralInvariants) {
  const Dataset dataset = SmallDataset(300, 11);
  TreeBundle bundle = BulkLoad(dataset);
  EXPECT_EQ(bundle.tree->num_objects(), dataset.size());
  EXPECT_GE(bundle.tree->height(), 2u);
  const SubtreeFacts facts =
      CheckSubtree(*bundle.tree, dataset, bundle.tree->SearchRoot());
  EXPECT_EQ(facts.objects, dataset.size());
}

TEST(SetRTreeTest, EmptyTree) {
  Dataset dataset;
  TreeBundle bundle = BulkLoad(dataset);
  EXPECT_EQ(bundle.tree->SearchRoot(), kInvalidPageId);
  SpatialKeywordQuery q;
  q.doc = KeywordSet{1};
  q.alpha = 0.5;
  const auto top = IndexTopK(*bundle.tree, q).value();
  EXPECT_TRUE(top.empty());
}

TEST(SetRTreeTest, SingleObjectTree) {
  Dataset dataset;
  dataset.Add(Point{0.3, 0.7}, KeywordSet{1, 2});
  dataset.Add(Point{0.6, 0.1}, KeywordSet{2, 3});
  TreeBundle bundle = BulkLoad(dataset);
  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.7};
  q.doc = KeywordSet{1};
  q.k = 2;
  q.alpha = 0.5;
  const auto top = IndexTopK(*bundle.tree, q).value();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);
}

// Parameterized sweep: index top-k must equal brute force for every (k,
// alpha, model) combination.
class SetRTopKSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, double,
                                                 SimilarityModel>> {};

TEST_P(SetRTopKSweep, MatchesBruteForce) {
  const auto [k, alpha, model] = GetParam();
  const Dataset dataset = SmallDataset(400, 23);
  TreeBundle bundle = BulkLoad(dataset);
  Rng rng(900 + k);
  for (int q_iter = 0; q_iter < 5; ++q_iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    const SpatialObject& pivot =
        dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())));
    q.doc = pivot.doc;  // realistic keywords
    q.k = k;
    q.alpha = alpha;
    q.model = model;
    const auto expected = BruteForceTopK(dataset, q);
    const auto actual = IndexTopK(*bundle.tree, q).value();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "position " << i;
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetRTopKSweep,
    ::testing::Combine(::testing::Values(1u, 5u, 20u, 100u),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(SimilarityModel::kJaccard,
                                         SimilarityModel::kDice)));

TEST(SetRTreeTest, InsertBuiltTreeMatchesBruteForce) {
  const Dataset dataset = SmallDataset(150, 31);
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("setr_ins");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 8;
  bundle.tree = SetRTree::CreateEmpty(bundle.pool.get(), dataset.diagonal(),
                                      options)
                    .value();
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(bundle.tree->Insert(o).ok());
  }
  ASSERT_TRUE(bundle.tree->Finalize().ok());
  EXPECT_EQ(bundle.tree->num_objects(), dataset.size());
  const SubtreeFacts facts =
      CheckSubtree(*bundle.tree, dataset, bundle.tree->SearchRoot());
  EXPECT_EQ(facts.objects, dataset.size());

  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.6};
  q.doc = dataset.object(7).doc;
  q.k = 25;
  q.alpha = 0.5;
  const auto expected = BruteForceTopK(dataset, q);
  const auto actual = IndexTopK(*bundle.tree, q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

TEST(SetRTreeTest, ReopenFinalizedIndex) {
  const Dataset dataset = SmallDataset(120, 41);
  TempFile file("setr_reopen");
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  EXPECT_EQ(tree->num_objects(), dataset.size());
  EXPECT_EQ(tree->options().capacity, 8u);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = dataset.object(3).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto expected = BruteForceTopK(dataset, q);
  const auto actual = IndexTopK(*tree, q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

TEST(SetRTreeTest, OpenRejectsWrongMagic) {
  TempFile file("setr_magic");
  {
    auto pager = Pager::Create(file.path()).value();
    const PageId id = pager->AllocatePages(1);
    std::vector<uint8_t> junk(pager->page_size(), 0x5a);
    ASSERT_TRUE(pager->WritePage(id, junk.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  auto tree = SetRTree::Open(&pool);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST(SetRTreeTest, CreateRequiresFreshFile) {
  TempFile file("setr_fresh");
  auto pager = Pager::Create(file.path()).value();
  pager->AllocatePages(1);
  BufferPool pool(pager.get(), 1u << 20);
  SetRTree::Options options;
  auto tree = SetRTree::CreateEmpty(&pool, 1.0, options);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kFailedPrecondition);
}

TreeBundle BulkLoadV2(const Dataset& dataset, uint32_t capacity = 8) {
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("setr_v2");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = capacity;
  options.format = kNodeFormatV2;
  bundle.tree =
      SetRTree::BulkLoad(dataset, bundle.pool.get(), options).value();
  return bundle;
}

TEST(SetRTreeTest, V2BulkLoadMatchesV1AndShrinksFile) {
  const Dataset dataset = SmallDataset(300, 17);
  TreeBundle v1 = BulkLoad(dataset);
  TreeBundle v2 = BulkLoadV2(dataset);
  ASSERT_TRUE(v1.tree->Finalize().ok());
  ASSERT_TRUE(v2.tree->Finalize().ok());
  EXPECT_EQ(v2.tree->options().format, kNodeFormatV2);
  EXPECT_EQ(v2.tree->num_objects(), v1.tree->num_objects());
  EXPECT_EQ(v2.tree->height(), v1.tree->height());
  // The compact format drops the fixed-slot slack and out-of-line blobs.
  EXPECT_LT(v2.pager->num_pages(), v1.pager->num_pages());

  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.6};
  q.doc = dataset.object(1).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto top_v1 = IndexTopK(*v1.tree, q).value();
  const auto top_v2 = IndexTopK(*v2.tree, q).value();
  ASSERT_EQ(top_v1.size(), top_v2.size());
  for (size_t i = 0; i < top_v1.size(); ++i) {
    EXPECT_EQ(top_v1[i].id, top_v2[i].id);
    EXPECT_EQ(top_v1[i].score, top_v2[i].score);  // bit-exact
  }
}

TEST(SetRTreeTest, V2StatNodeReportsCompactRecords) {
  const Dataset dataset = SmallDataset(200, 23);
  TreeBundle v1 = BulkLoad(dataset);
  TreeBundle v2 = BulkLoadV2(dataset);
  const NodeStat s1 = v1.tree->StatNode(v1.tree->SearchRoot()).value();
  const NodeStat s2 = v2.tree->StatNode(v2.tree->SearchRoot()).value();
  EXPECT_EQ(s1.is_leaf, s2.is_leaf);
  EXPECT_EQ(s1.entries, s2.entries);
  EXPECT_GT(s2.record_bytes, 0u);
  EXPECT_LE(s2.record_pages, s1.record_pages);
  EXPECT_LE(s2.record_bytes,
            s2.record_pages * v2.pager->page_size());
}

TEST(SetRTreeTest, V2IsImmutable) {
  const Dataset dataset = SmallDataset(60, 29);
  TreeBundle v2 = BulkLoadV2(dataset);
  SpatialObject extra;
  extra.id = 1000;
  extra.loc = Point{0.5, 0.5};
  extra.doc = dataset.object(0).doc;
  EXPECT_EQ(v2.tree->Insert(extra).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(v2.tree->Remove(dataset.object(0).id, dataset.object(0).loc)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SetRTreeTest, V2ReopenAndMappedReadsServeQueries) {
  const Dataset dataset = SmallDataset(300, 31);
  TempFile file("setr_v2_reopen");
  SpatialKeywordQuery q;
  q.loc = Point{0.7, 0.2};
  q.doc = dataset.object(2).doc;
  q.k = 8;
  q.alpha = 0.5;
  std::vector<ScoredObject> want;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    options.format = kNodeFormatV2;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    want = IndexTopK(*tree, q).value();
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  EXPECT_EQ(tree->options().format, kNodeFormatV2);

  ASSERT_TRUE(pager->EnableMappedReads().ok());
  pager->io_stats().Reset();
  const auto got = IndexTopK(*tree, q).value();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].score, want[i].score);
  }
  // Node reads were served from the map, not buffered pread.
  EXPECT_GT(pager->io_stats().mapped_reads(), 0u);
  EXPECT_EQ(pager->io_stats().physical_reads(), 0u);
}

// A v2 node with a flipped body byte must surface as Corruption from the
// tree read path (checksum), never as UB.
TEST(SetRTreeTest, V2DetectsCorruptedNode) {
  const Dataset dataset = SmallDataset(300, 37);
  TempFile file("setr_v2_corrupt");
  PageId victim;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    options.format = kNodeFormatV2;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    victim = tree->SearchRoot();
  }
  {
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
    page[kNodeHeaderBytesV2 + 3] ^= 0x40;
    ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  const auto read = tree->ReadDecodedNode(victim, /*use_cache=*/false);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(SetRTreeTest, NodeAccessesAreCountedAsIo) {
  const Dataset dataset = SmallDataset(300, 53);
  TreeBundle bundle = BulkLoad(dataset);
  ASSERT_TRUE(bundle.pool->InvalidateAll().ok());
  bundle.pager->io_stats().Reset();
  SpatialKeywordQuery q;
  q.loc = Point{0.2, 0.2};
  q.doc = dataset.object(0).doc;
  q.k = 5;
  q.alpha = 0.5;
  (void)IndexTopK(*bundle.tree, q).value();
  EXPECT_GT(bundle.pager->io_stats().physical_reads(), 0u);
}

}  // namespace
}  // namespace wsk
