// Mutation differential harness (docs/SEGMENTS.md): 120+ seeded scenarios
// interleave inserts, updates, and deletes with top-k and why-not queries
// on a live SegmentedEngine. After every mutation batch — and again after a
// forced compaction — the engine is compared against
//   (a) the brute-force oracle over the logically-current object set, and
//   (b) a from-scratch WhyNotEngine rebuilt over that set,
// bit for bit: identical top-k scores and ids under the canonical (score
// desc, id asc) order, identical refined queries and penalties from all
// three why-not algorithms, and identical document frequencies in the
// vocabulary. A before-swap hook also queries mid-merge, while the new
// frozen segment exists but the old view is still published, and those
// answers must be unchanged too.
//
// Sharded like differential_oracle_test via GTEST_TOTAL_SHARDS (see
// tests/CMakeLists.txt). Failures print the scenario seed; replay with
// wsk::testing::MakeScenario plus the batch schedule derived from it.
#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "data/query.h"
#include "segment/segmented_engine.h"
#include "testing/oracle.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 132;  // inclusive; acceptance floor is 120
constexpr int kBatches = 2;

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

struct ObjectRecord {
  Point loc;
  std::vector<std::string> keywords;
};

// The logical mirror the engine is compared against: id -> current object.
using Mirror = std::map<ObjectId, ObjectRecord>;

std::vector<std::string> TermStrings(const Vocabulary& vocabulary,
                                     const KeywordSet& doc) {
  std::vector<std::string> out;
  out.reserve(doc.size());
  for (TermId t : doc) out.push_back(vocabulary.TermString(t));
  return out;
}

Dataset RebuildReference(const SegmentedEngine& engine, const Mirror& mirror) {
  Dataset reference;
  reference.vocabulary() = engine.vocabulary().CloneDictionary();
  reference.OverrideDiagonal(engine.diagonal());
  for (const auto& [id, record] : mirror) {  // std::map: ascending id order
    reference.AddWithId(id, record.loc,
                        reference.vocabulary().InternAll(record.keywords));
  }
  return reference;
}

void ExpectTopKBitIdentical(const std::vector<ScoredObject>& got,
                            const std::vector<ScoredObject>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
  }
}

void ExpectWhyNotEqual(const WhyNotResult& got, const WhyNotResult& want) {
  EXPECT_EQ(got.already_in_result, want.already_in_result);
  EXPECT_EQ(got.stats.initial_rank, want.stats.initial_rank);
  EXPECT_EQ(got.refined.penalty, want.refined.penalty);  // bit exact
  EXPECT_TRUE(got.refined.doc == want.refined.doc)
      << "got " << got.refined.doc.ToString() << " want "
      << want.refined.doc.ToString();
  EXPECT_EQ(got.refined.k, want.refined.k);
  EXPECT_EQ(got.refined.rank, want.refined.rank);
  EXPECT_EQ(got.refined.edit_distance, want.refined.edit_distance);
}

// Full checkpoint: df reconciliation, top-k vs brute force, all three
// algorithms vs the oracle and vs a rebuilt static engine. Returns the
// reference answers so callers can also assert merge invariance.
struct CheckpointAnswers {
  std::vector<ScoredObject> topk;
  std::vector<WhyNotResult> whynot;  // indexed like kAlgorithms
};

void RunCheckpoint(const SegmentedEngine& engine, const Mirror& mirror,
                   const testing::WhyNotScenario& scenario,
                   CheckpointAnswers* answers) {
  const Dataset reference = RebuildReference(engine, mirror);

  // The engine maintained document frequencies incrementally across the
  // whole mutation history; the reference re-recorded them from scratch.
  ASSERT_EQ(engine.vocabulary().DocumentFrequencies(),
            reference.vocabulary().DocumentFrequencies());

  StatusOr<std::vector<ScoredObject>> topk = engine.TopK(scenario.query);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ExpectTopKBitIdentical(topk.value(), BruteForceTopK(reference,
                                                      scenario.query));
  answers->topk = std::move(topk).value();

  const testing::OracleResult oracle = testing::SolveWhyNotOracle(
      reference, scenario.query, scenario.missing, scenario.options.lambda);

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> rebuilt =
      WhyNotEngine::Build(&reference, config);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  answers->whynot.clear();
  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    StatusOr<WhyNotResult> live = engine.Answer(
        algorithm, scenario.query, scenario.missing, scenario.options);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    StatusOr<WhyNotResult> fresh = rebuilt.value()->Answer(
        algorithm, scenario.query, scenario.missing, scenario.options);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    // Live engine == from-scratch rebuild, bit for bit.
    ExpectWhyNotEqual(live.value(), fresh.value());

    // Live engine == oracle.
    EXPECT_EQ(live.value().already_in_result, oracle.already_in_result);
    EXPECT_EQ(live.value().stats.initial_rank, oracle.initial_rank);
    if (!oracle.already_in_result) {
      EXPECT_EQ(live.value().refined.penalty, oracle.best.penalty);
      EXPECT_TRUE(live.value().refined.doc == oracle.best.doc)
          << "got " << live.value().refined.doc.ToString() << " want "
          << oracle.best.doc.ToString();
      EXPECT_EQ(live.value().refined.k, oracle.best.k);
      EXPECT_EQ(live.value().refined.rank, oracle.best.rank);
    }
    answers->whynot.push_back(std::move(live).value());
  }
}

class SegmentDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentDifferentialTest, MutatedEngineMatchesOracleAndRebuild) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  // Mirror the seed dataset, then hand it to the live engine.
  Mirror mirror;
  for (const SpatialObject& o : scenario->dataset.objects()) {
    mirror[o.id] =
        ObjectRecord{o.loc, TermStrings(scenario->dataset.vocabulary(),
                                        o.doc)};
  }
  const Rect bounds = scenario->dataset.bounding_rect();

  SegmentedEngine::Config config;
  config.node_capacity = 16;
  config.delta_capacity = 4 + static_cast<uint32_t>(seed % 13);
  config.auto_merge = (seed % 2) == 0;  // odd seeds only compact on demand
  StatusOr<std::unique_ptr<SegmentedEngine>> built =
      SegmentedEngine::Build(scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SegmentedEngine* engine = built.value().get();

  // Mutations must keep the why-not instance well-formed: the missing
  // objects must survive untouched (their documents pin the oracle's
  // candidate universe).
  std::vector<ObjectId> mutable_ids;
  for (const auto& [id, record] : mirror) {
    if (std::find(scenario->missing.begin(), scenario->missing.end(), id) ==
        scenario->missing.end()) {
      mutable_ids.push_back(id);
    }
  }
  const uint64_t width =
      static_cast<uint64_t>(std::max(1.0, bounds.max_x - bounds.min_x));
  const uint64_t height =
      static_cast<uint64_t>(std::max(1.0, bounds.max_y - bounds.min_y));

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  CheckpointAnswers answers;
  for (int batch = 0; batch < kBatches; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    const int ops = 6 + static_cast<int>(rng.Next() % 6);
    for (int op = 0; op < ops; ++op) {
      const uint64_t r = rng.Next();
      const Point loc{
          bounds.min_x + static_cast<double>((r >> 16) % (8 * width)) / 8.0,
          bounds.min_y + static_cast<double>((r >> 32) % (8 * height)) / 8.0};
      // Keywords: mostly existing terms (they interact with the query and
      // the missing documents), occasionally a fresh live-only term.
      std::vector<std::string> keywords;
      const uint32_t num_terms = engine->vocabulary().num_terms();
      const int nkw = 1 + static_cast<int>(r % 3);
      for (int t = 0; t < nkw; ++t) {
        const uint64_t pick = rng.Next();
        if (pick % 8 == 0) {
          keywords.push_back("live" + std::to_string(pick % 5));
        } else {
          keywords.push_back(engine->vocabulary().TermString(
              static_cast<TermId>(pick % num_terms)));
        }
      }
      const int kind = static_cast<int>(r % 10);
      if (kind < 4 || mutable_ids.empty()) {  // insert
        StatusOr<ObjectId> id = engine->Insert(loc, keywords);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        mirror[id.value()] = ObjectRecord{loc, keywords};
        mutable_ids.push_back(id.value());
      } else if (kind < 7) {  // update
        const ObjectId id = mutable_ids[rng.Next() % mutable_ids.size()];
        ASSERT_TRUE(engine->Update(id, loc, keywords).ok());
        mirror[id] = ObjectRecord{loc, keywords};
      } else {  // delete
        const size_t pos = rng.Next() % mutable_ids.size();
        const ObjectId id = mutable_ids[pos];
        mutable_ids.erase(mutable_ids.begin() + pos);
        ASSERT_TRUE(engine->Delete(id).ok());
        mirror.erase(id);
      }
    }
    RunCheckpoint(*engine, mirror, *scenario, &answers);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Mid-merge probe: after the merged segment is built but before the view
  // swap, a query must still see exactly the pre-merge logical state. With
  // auto-merge on, the background worker may have drained the delta already
  // and ForceMerge would be a hook-less no-op, so each attempt first inserts
  // one object (guaranteeing real merge work) and refreshes the expected
  // answers. One attempt almost always suffices; the loop covers the rare
  // race where that insert itself triggers a rotation whose background
  // merge completes before ForceMerge takes the writer lock.
  StatusOr<std::vector<ScoredObject>> mid_merge_topk =
      Status::Internal("hook did not run");
  for (int attempt = 0; attempt < 3 && !mid_merge_topk.ok(); ++attempt) {
    const uint64_t r = rng.Next();
    const Point loc{
        bounds.min_x + static_cast<double>((r >> 16) % (8 * width)) / 8.0,
        bounds.min_y + static_cast<double>((r >> 32) % (8 * height)) / 8.0};
    const std::vector<std::string> keywords = {
        engine->vocabulary().TermString(
            static_cast<TermId>(r % engine->vocabulary().num_terms()))};
    StatusOr<ObjectId> id = engine->Insert(loc, keywords);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    mirror[id.value()] = ObjectRecord{loc, keywords};

    RunCheckpoint(*engine, mirror, *scenario, &answers);
    if (::testing::Test::HasFatalFailure()) return;

    engine->manager()->set_before_swap_hook(
        [engine, &scenario, &mid_merge_topk] {
          mid_merge_topk = engine->TopK(scenario->query);
        });
    ASSERT_TRUE(engine->ForceMerge().ok());
    engine->manager()->set_before_swap_hook(nullptr);
  }
  ASSERT_TRUE(mid_merge_topk.ok()) << mid_merge_topk.status().ToString();
  ExpectTopKBitIdentical(mid_merge_topk.value(), answers.topk);

  // Post-merge: same logical state, so every answer must be unchanged bit
  // for bit — and the compacted engine must still match the rebuild.
  const SegmentCountersSnapshot counters = engine->segment_counters();
  ASSERT_TRUE(counters.valid);
  EXPECT_EQ(counters.frozen_segments, 1u);
  EXPECT_EQ(counters.delta_objects, 0u);
  EXPECT_EQ(counters.live_objects, mirror.size());

  CheckpointAnswers merged;
  RunCheckpoint(*engine, mirror, *scenario, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectTopKBitIdentical(merged.topk, answers.topk);
  ASSERT_EQ(merged.whynot.size(), answers.whynot.size());
  for (size_t i = 0; i < merged.whynot.size(); ++i) {
    SCOPED_TRACE(WhyNotAlgorithmName(kAlgorithms[i]));
    ExpectWhyNotEqual(merged.whynot[i], answers.whynot[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentDifferentialTest,
                         ::testing::Range<uint64_t>(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
