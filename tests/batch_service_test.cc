// QueryService batch collector (docs/BATCHING.md): requests grouped
// behind the collection window must answer bit-identically to solo
// execution, duplicate fingerprints must execute once and fan out
// (batch.dedup), and the result-cache interaction is fixed: lookup
// happens before a request enqueues, exactly one insertion per unique
// fingerprint after the batch computes.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "data/generator.h"
#include "service/query_service.h"

namespace wsk {
namespace {

class BatchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 800;
    config.vocab_size = 80;
    config.seed = 24601;
    dataset_ = GenerateDataset(config);
    engine_ = WhyNotEngine::Build(&dataset_, {}).value();
  }

  SpatialKeywordQuery Query(size_t i) const {
    SpatialKeywordQuery q;
    q.loc = Point{0.1 + 0.09 * static_cast<double>(i % 9),
                  0.85 - 0.08 * static_cast<double>(i % 10)};
    std::vector<TermId> terms(dataset_.object(11 * i + 3).doc.begin(),
                              dataset_.object(11 * i + 3).doc.end());
    if (terms.size() > 4) terms.resize(4);
    q.doc = KeywordSet(std::move(terms));
    q.k = 5 + static_cast<uint32_t>(i % 6);
    q.alpha = 0.5;
    return q;
  }

  QueryServiceConfig BatchedConfig(size_t max_size,
                                   double window_ms = 5.0) const {
    QueryServiceConfig config;
    config.batch_max_size = max_size;
    config.batch_window_ms = window_ms;
    return config;
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(BatchServiceTest, BatchedAnswersMatchSoloEngine) {
  QueryService service(engine_.get(), BatchedConfig(4));
  constexpr size_t kN = 12;
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  for (size_t i = 0; i < kN; ++i) {
    futures.push_back(service.SubmitTopK(Query(i)));
  }
  for (size_t i = 0; i < kN; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    StatusOr<QueryService::TopKResponse> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const std::vector<ScoredObject> want = engine_->TopK(Query(i)).value();
    ASSERT_EQ(got.value().results.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got.value().results[j].id, want[j].id);
      EXPECT_EQ(got.value().results[j].score, want[j].score);
    }
  }
  // Every request went through the batched path, none through the solo
  // task, and at least one batch held more than one query.
  EXPECT_EQ(service.metrics().counter("batch.queries").value(), kN);
  EXPECT_GE(service.metrics().counter("batch.batches").value(), 1u);
  EXPECT_LE(service.metrics().counter("batch.batches").value(), kN);
}

TEST_F(BatchServiceTest, DuplicateFingerprintsExecuteOnceAndFanOut) {
  QueryService service(engine_.get(), BatchedConfig(8, 200.0));
  const SpatialKeywordQuery query = Query(0);
  const std::vector<ScoredObject> want = engine_->TopK(query).value();

  constexpr size_t kDupes = 4;
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  for (size_t i = 0; i < kDupes; ++i) {
    futures.push_back(service.SubmitTopK(query));
  }
  for (auto& f : futures) {
    StatusOr<QueryService::TopKResponse> got = f.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got.value().cache_hit);  // all four missed, then computed
    ASSERT_EQ(got.value().results.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got.value().results[j].id, want[j].id);
      EXPECT_EQ(got.value().results[j].score, want[j].score);
    }
  }

  // The cache was consulted before each request enqueued (4 misses), the
  // batch computed the fingerprint once, and inserted it exactly once.
  const ResultCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.misses, kDupes);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(service.metrics().counter("batch.dedup").value(), kDupes - 1);

  // A later identical request is a pure cache hit — it never waits out a
  // collection window and never reaches the collector.
  StatusOr<QueryService::TopKResponse> hit = service.TopK(query);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.metrics().counter("batch.queries").value(), kDupes);
}

TEST_F(BatchServiceTest, BypassCacheNeverDedupes) {
  QueryService service(engine_.get(), BatchedConfig(8, 200.0));
  RequestOptions opts;
  opts.bypass_cache = true;
  const SpatialKeywordQuery query = Query(1);
  const std::vector<ScoredObject> want = engine_->TopK(query).value();

  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  for (size_t i = 0; i < 3; ++i) {
    futures.push_back(service.SubmitTopK(query, opts));
  }
  for (auto& f : futures) {
    StatusOr<QueryService::TopKResponse> got = f.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().results.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got.value().results[j].id, want[j].id);
    }
  }
  EXPECT_EQ(service.metrics().counter("batch.dedup").value(), 0u);
  EXPECT_EQ(service.cache().stats().insertions, 0u);
  EXPECT_EQ(service.cache().stats().misses, 0u);  // never even looked up
}

TEST_F(BatchServiceTest, DeadlineExpiredInCollectorFailsFast) {
  // One request with a sub-millisecond deadline against a 60 ms window:
  // by the time the collector dispatches, the deadline has passed and the
  // request must fail without touching the backend.
  QueryService service(engine_.get(), BatchedConfig(16, 60.0));
  RequestOptions opts;
  opts.timeout_ms = 0.01;
  StatusOr<QueryService::TopKResponse> got = service.TopK(Query(2), opts);
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().counter("responses.deadline_exceeded").value(),
            1u);
}

TEST_F(BatchServiceTest, PreCancelledRequestFailsOthersUnaffected) {
  QueryService service(engine_.get(), BatchedConfig(4, 25.0));
  CancelToken token = CancelToken::Create();
  token.Cancel();
  RequestOptions cancelled;
  cancelled.cancel = token;

  auto doomed = service.SubmitTopK(Query(3), cancelled);
  auto fine = service.SubmitTopK(Query(4));
  EXPECT_EQ(doomed.get().status().code(), StatusCode::kCancelled);
  StatusOr<QueryService::TopKResponse> got = fine.get();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const std::vector<ScoredObject> want = engine_->TopK(Query(4)).value();
  ASSERT_EQ(got.value().results.size(), want.size());
  for (size_t j = 0; j < want.size(); ++j) {
    EXPECT_EQ(got.value().results[j].id, want[j].id);
    EXPECT_EQ(got.value().results[j].score, want[j].score);
  }
}

TEST_F(BatchServiceTest, ReportsSurfaceBatchingMetrics) {
  QueryService service(engine_.get(), BatchedConfig(4));
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  for (size_t i = 0; i < 6; ++i) futures.push_back(service.SubmitTopK(Query(i)));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("batch.batches"), std::string::npos);
  EXPECT_NE(report.find("batch.occupancy"), std::string::npos);
  EXPECT_NE(report.find("batch.window_wait.ms"), std::string::npos);
  EXPECT_NE(report.find("batching "), std::string::npos);

  const std::string prom = service.PrometheusReport();
  EXPECT_NE(prom.find("wsk_batch_batches_total"), std::string::npos);
  EXPECT_NE(prom.find("wsk_batch_dedup_total"), std::string::npos);
  EXPECT_NE(prom.find("wsk_batch_occupancy"), std::string::npos);
  EXPECT_NE(prom.find("wsk_batch_window_wait_ms"), std::string::npos);
  EXPECT_NE(prom.find("wsk_batch_pending_requests"), std::string::npos);
  // The index-layer amortization counters flow through trace absorption.
  EXPECT_NE(prom.find("wsk_prune_batch_queries_total"), std::string::npos);
}

TEST_F(BatchServiceTest, DefaultConfigKeepsSoloPath) {
  QueryServiceConfig config;  // batch_max_size defaults to 1: disabled
  ASSERT_EQ(config.batch_max_size, 1u);
  QueryService service(engine_.get(), config);
  StatusOr<QueryService::TopKResponse> got = service.TopK(Query(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(service.metrics().counter("batch.queries").value(), 0u);
  EXPECT_EQ(service.metrics().counter("batch.batches").value(), 0u);
  // No collector line in the report when batching is off.
  EXPECT_EQ(service.MetricsReport().find("batching "), std::string::npos);
}

TEST_F(BatchServiceTest, WindowZeroDispatchesImmediately) {
  QueryService service(engine_.get(), BatchedConfig(8, 0.0));
  StatusOr<QueryService::TopKResponse> got = service.TopK(Query(6));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(service.metrics().counter("batch.queries").value(), 1u);
}

}  // namespace
}  // namespace wsk
