// Unit tests of the continuous-telemetry hub (observability/telemetry.h):
// sampling cadence, rolling windows, reservoir / slow-ring retention, the
// rolling slow threshold, and the QueryProfile serializations.
#include "observability/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "observability/histogram.h"

namespace wsk {
namespace {

QueryProfile MakeProfile(double wall_ms, bool ok = true,
                         bool cache_hit = false) {
  QueryProfile p;
  p.kind = ProfileKind::kTopK;
  p.algorithm = "topk";
  p.fingerprint = 0xabcd;
  p.status = "OK";
  p.ok = ok;
  p.cache_hit = cache_hit;
  p.wall_ms = wall_ms;
  return p;
}

TEST(LatencyBucketsTest, SharedMathIsConsistent) {
  // 1 ms = 1000 us lands in the (512 us, 1024 us] bucket.
  EXPECT_EQ(LatencyBucketIndex(1.0), 10u);
  EXPECT_DOUBLE_EQ(LatencyBucketBoundMs(10), 1.024);
  // Degenerate inputs land in the first bucket instead of faulting.
  EXPECT_EQ(LatencyBucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyBucketIndex(-3.0), 0u);
  // Bucket index never exceeds the table.
  EXPECT_EQ(LatencyBucketIndex(1e12), kLatencyBuckets - 1);

  uint64_t counts[kLatencyBuckets] = {};
  counts[LatencyBucketIndex(1.0)] = 99;
  counts[LatencyBucketIndex(100.0)] = 1;
  EXPECT_DOUBLE_EQ(LatencyQuantileMs(counts, 100, 0.50),
                   LatencyBucketBoundMs(10));
  EXPECT_DOUBLE_EQ(LatencyQuantileMs(counts, 100, 1.00),
                   LatencyBucketBoundMs(LatencyBucketIndex(100.0)));
  EXPECT_DOUBLE_EQ(LatencyQuantileMs(counts, 0, 0.99), 0.0);
}

TEST(QueryProfileTest, ToJsonIsOneStructuredLine) {
  QueryProfile p = MakeProfile(1.5);
  p.id = 7;
  p.queue_ms = 0.25;
  p.status = "OK";
  p.stage_total_us[static_cast<size_t>(TraceStage::kTopK)] = 1400;
  p.stage_count[static_cast<size_t>(TraceStage::kTopK)] = 1;
  p.counters[static_cast<size_t>(TraceCounter::kNodesVisited)] = 42;
  p.io_physical = 3;
  const std::string json = p.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"topk\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\"000000000000abcd\""),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"queue_ms\":0.250"), std::string::npos);
  EXPECT_NE(json.find("\"topk\":{\"count\":1,\"total_ms\":1.400"),
            std::string::npos);
  EXPECT_NE(json.find("\"nodes_visited\":42"), std::string::npos);
  EXPECT_NE(json.find("\"physical\":3"), std::string::npos);
  // Zero-valued stages and counters are omitted.
  EXPECT_EQ(json.find("\"enumeration\""), std::string::npos);
}

TEST(QueryProfileTest, StageSumAndSummaryTags) {
  QueryProfile p = MakeProfile(2.0);
  p.id = 3;
  p.stage_total_us[static_cast<size_t>(TraceStage::kQuery)] = 1800;
  p.stage_total_us[static_cast<size_t>(TraceStage::kTopK)] = 1700;
  EXPECT_DOUBLE_EQ(p.StageSumMs(), 3.5);

  p.sampled = true;
  EXPECT_NE(p.Summary().find("[sampled]"), std::string::npos);
  EXPECT_EQ(p.Summary().find("[slow]"), std::string::npos);
  p.slow = true;
  EXPECT_NE(p.Summary().find("[slow]"), std::string::npos);
}

TEST(RollingWindowsTest, AggregatesRequestsShedAndHits) {
  RollingWindows windows;
  for (int i = 0; i < 8; ++i) windows.RecordRequest(true, i < 2, 1.0);
  windows.RecordRequest(false, false, 4.0);
  windows.RecordShed();

  const RollingWindows::Snapshot w = windows.Take(60);
  EXPECT_EQ(w.window_s, 60u);
  EXPECT_EQ(w.requests, 9u);
  EXPECT_EQ(w.ok, 8u);
  EXPECT_EQ(w.shed, 1u);
  EXPECT_EQ(w.cache_hits, 2u);
  EXPECT_DOUBLE_EQ(w.qps, 9.0 / 60.0);
  EXPECT_DOUBLE_EQ(w.shed_ratio, 0.1);
  EXPECT_DOUBLE_EQ(w.hit_ratio, 2.0 / 9.0);
  EXPECT_EQ(w.latency_samples, 9u);
  EXPECT_GT(w.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(w.p50_ms, LatencyBucketBoundMs(LatencyBucketIndex(1.0)));
  EXPECT_DOUBLE_EQ(w.p99_ms, LatencyBucketBoundMs(LatencyBucketIndex(4.0)));
  EXPECT_EQ(windows.Take(0).requests, 0u);
}

TEST(RollingWindowsTest, OldSecondsAgeOutOfShortWindows) {
  RollingWindows windows;
  windows.RecordRequest(true, false, 1.0);
  // Cross at least one second boundary; the old slot must leave the 1 s
  // window but stay inside the 60 s window.
  std::this_thread::sleep_for(std::chrono::milliseconds(2100));
  EXPECT_EQ(windows.Take(1).requests, 0u);
  EXPECT_EQ(windows.Take(60).requests, 1u);
}

TEST(TelemetryHubTest, SamplingCadenceIsEveryNth) {
  TelemetryConfig config;
  config.sample_every = 4;
  config.profile_event_capacity = 128;
  TelemetryHub hub(config);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(hub.NextEventCapacity(), 128u);
    EXPECT_EQ(hub.NextEventCapacity(), 0u);
    EXPECT_EQ(hub.NextEventCapacity(), 0u);
    EXPECT_EQ(hub.NextEventCapacity(), 0u);
  }

  TelemetryConfig always;
  always.sample_every = 1;
  always.profile_event_capacity = 64;
  TelemetryHub every(always);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(every.NextEventCapacity(), 64u);
}

TEST(TelemetryHubTest, SampledProfilesLandInReservoirOldestFirst) {
  TelemetryConfig config;
  config.sample_every = 1;
  config.profile_reservoir = 3;
  config.slow_factor = 0.0;
  config.slow_min_ms = 0.0;  // nothing classifies slow
  TelemetryHub hub(config);

  for (int i = 0; i < 5; ++i) {
    TraceRecorder trace(16);
    {
      TraceSpan span(&trace, TraceStage::kTopK);
      trace.Add(TraceCounter::kNodesVisited, 10 + i);
    }
    hub.Report(MakeProfile(1.0), &trace);
  }

  const std::vector<QueryProfile> profiles = hub.Profiles();
  ASSERT_EQ(profiles.size(), 3u);
  // Ring keeps the most recent three, oldest first: ids 3, 4, 5.
  EXPECT_EQ(profiles[0].id, 3u);
  EXPECT_EQ(profiles[1].id, 4u);
  EXPECT_EQ(profiles[2].id, 5u);
  for (const QueryProfile& p : profiles) {
    EXPECT_TRUE(p.sampled);
    EXPECT_FALSE(p.slow);
    EXPECT_FALSE(p.events.empty());
    EXPECT_EQ(p.stage_count[static_cast<size_t>(TraceStage::kTopK)], 1u);
    EXPECT_GE(p.counters[static_cast<size_t>(TraceCounter::kNodesVisited)],
              10u);
  }

  const TelemetryStats stats = hub.stats();
  EXPECT_EQ(stats.requests_observed, 5u);
  EXPECT_EQ(stats.profiles_sampled, 5u);
  EXPECT_EQ(stats.slow_queries, 0u);
  EXPECT_EQ(stats.reservoir_size, 3u);
}

TEST(TelemetryHubTest, AggregationOnlyRecorderIsNotSampled) {
  TelemetryConfig config;
  config.sample_every = 1;
  config.slow_factor = 0.0;
  config.slow_min_ms = 0.0;
  TelemetryHub hub(config);

  TraceRecorder aggregation_only(0);
  { TraceSpan span(&aggregation_only, TraceStage::kTopK); }
  hub.Report(MakeProfile(1.0), &aggregation_only);

  EXPECT_EQ(hub.stats().profiles_sampled, 0u);
  EXPECT_TRUE(hub.Profiles().empty());
}

TEST(TelemetryHubTest, SlowQueriesCaptureRecordAndStreamJsonl) {
  const std::string path =
      ::testing::TempDir() + "/telemetry_slow_test.jsonl";
  std::remove(path.c_str());

  TelemetryConfig config;
  config.sample_every = 0;  // profile every request
  config.slow_factor = 0.0;  // fixed floor decides
  config.slow_min_ms = 0.001;
  config.slow_log_capacity = 2;
  config.slow_log_path = path;
  TelemetryHub hub(config);

  for (int i = 0; i < 3; ++i) {
    TraceRecorder trace(16);
    { TraceSpan span(&trace, TraceStage::kTopK); }
    hub.Report(MakeProfile(5.0 + i), &trace);
  }
  // Under the floor: observed but not captured.
  hub.Report(MakeProfile(0.0), nullptr);

  const TelemetryStats stats = hub.stats();
  EXPECT_EQ(stats.requests_observed, 4u);
  EXPECT_EQ(stats.slow_queries, 3u);
  EXPECT_DOUBLE_EQ(stats.slow_threshold_ms, 0.001);

  // The in-memory ring holds the most recent two, oldest first, with the
  // stage breakdown but without the event buffer.
  const std::vector<QueryProfile> slow = hub.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].id, 2u);
  EXPECT_EQ(slow[1].id, 3u);
  for (const QueryProfile& p : slow) {
    EXPECT_TRUE(p.slow);
    EXPECT_TRUE(p.events.empty());
    EXPECT_EQ(p.stage_count[static_cast<size_t>(TraceStage::kTopK)], 1u);
  }

  // Every slow completion streamed one JSON line to the sink.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
    EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"stages\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(TelemetryHubTest, ThresholdRefreshTracksRollingP99) {
  TelemetryConfig config;
  config.sample_every = 0;
  config.profile_reservoir = 1;
  config.slow_factor = 2.0;
  config.slow_min_ms = 0.5;
  TelemetryHub hub(config);
  EXPECT_DOUBLE_EQ(hub.slow_threshold_ms(), 0.5);

  // 256 completions at ~1 ms land in the (512 us, 1024 us] bucket; the
  // refresh at completion 256 lifts the threshold to 2 x the bucket bound.
  for (int i = 0; i < 256; ++i) hub.Report(MakeProfile(1.0), nullptr);
  EXPECT_DOUBLE_EQ(hub.slow_threshold_ms(), 2.0 * 1.024);
  // All 256 beat the initial 0.5 ms floor and were classified slow; with
  // the refreshed threshold a further 1 ms completion is not.
  EXPECT_EQ(hub.stats().slow_queries, 256u);
  hub.Report(MakeProfile(1.0), nullptr);
  EXPECT_EQ(hub.stats().slow_queries, 256u);
}

TEST(TelemetryHubTest, BatchProfilesSkipWindowsAndSlowClassification) {
  TelemetryConfig config;
  config.sample_every = 1;
  config.slow_factor = 0.0;
  config.slow_min_ms = 0.001;
  TelemetryHub hub(config);

  QueryProfile batch;
  batch.kind = ProfileKind::kBatch;
  batch.algorithm = "batch";
  batch.ok = true;
  batch.wall_ms = 100.0;  // covers many requests; must not classify slow
  TraceRecorder trace(16);
  { TraceSpan span(&trace, TraceStage::kBatchTopK); }
  hub.Report(std::move(batch), &trace);

  EXPECT_EQ(hub.Window(60).requests, 0u);
  EXPECT_EQ(hub.stats().slow_queries, 0u);
  // Background work still shows up in the reservoir when sampled.
  const std::vector<QueryProfile> profiles = hub.Profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].kind, ProfileKind::kBatch);
  EXPECT_FALSE(profiles[0].slow);

  hub.ReportShed();
  EXPECT_EQ(hub.Window(60).shed, 1u);
}

TEST(ProcessGaugesTest, UptimeAndResidentMemoryArePositive) {
  EXPECT_GT(ProcessUptimeSeconds(), 0.0);
#if defined(__linux__)
  EXPECT_GT(ProcessResidentBytes(), 0u);
#endif
}

}  // namespace
}  // namespace wsk
