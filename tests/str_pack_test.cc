#include "index/str_pack.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"

namespace wsk {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points(n);
  for (Point& p : points) p = Point{rng.NextDouble(), rng.NextDouble()};
  return points;
}

TEST(StrPackTest, CoversEveryItemExactlyOnce) {
  const auto points = RandomPoints(537, 1);
  const auto groups = StrPack(points, 10);
  std::set<uint32_t> seen;
  for (const auto& group : groups) {
    for (uint32_t idx : group) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, points.size());
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(StrPackTest, GroupSizesBounded) {
  const auto points = RandomPoints(537, 2);
  const auto groups = StrPack(points, 10);
  // At least ceil(n/C) groups; each slab can add one partial tail group, so
  // at most ceil(n/C) + num_slabs (= ceil(sqrt(54)) = 8) groups in total.
  EXPECT_GE(groups.size(), (537 + 9) / 10u);
  EXPECT_LE(groups.size(), (537 + 9) / 10u + 8u);
  for (const auto& group : groups) {
    EXPECT_GE(group.size(), 1u);
    EXPECT_LE(group.size(), 10u);
  }
}

TEST(StrPackTest, SingleGroupWhenFewItems) {
  const auto points = RandomPoints(5, 3);
  const auto groups = StrPack(points, 10);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

TEST(StrPackTest, Deterministic) {
  const auto points = RandomPoints(200, 4);
  EXPECT_EQ(StrPack(points, 7), StrPack(points, 7));
}

TEST(StrPackTest, SpatialLocality) {
  // Packed groups should have much smaller total MBR area than random
  // grouping of the same sizes.
  const auto points = RandomPoints(1000, 5);
  const auto groups = StrPack(points, 25);
  double str_area = 0;
  for (const auto& group : groups) {
    Rect r;
    for (uint32_t idx : group) r.Extend(points[idx]);
    str_area += r.Area();
  }
  // Random contiguous grouping baseline.
  double random_area = 0;
  for (size_t start = 0; start < points.size(); start += 25) {
    Rect r;
    for (size_t i = start; i < std::min(points.size(), start + 25); ++i) {
      r.Extend(points[i]);
    }
    random_area += r.Area();
  }
  EXPECT_LT(str_area, random_area * 0.5);
}

TEST(StrPackTest, HandlesDuplicatePoints) {
  std::vector<Point> points(50, Point{0.5, 0.5});
  const auto groups = StrPack(points, 8);
  size_t total = 0;
  for (const auto& group : groups) total += group.size();
  EXPECT_EQ(total, 50u);
}

}  // namespace
}  // namespace wsk
