# Drives wsk_cli through generate -> topk -> whynot -> explain -> trace ->
# statsz -> profiles -> serve -> live -> inspect.
set(csv "${WORK_DIR}/cli_e2e.csv")
execute_process(COMMAND ${CLI} generate --out ${csv} --objects 2000
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}")
endif()
execute_process(COMMAND ${CLI} topk --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 5
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "top-5")
  message(FATAL_ERROR "topk failed: ${out}")
endif()
execute_process(COMMAND ${CLI} whynot --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                        --algorithm advanced
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whynot failed: ${out}")
endif()
execute_process(COMMAND ${CLI} explain --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explain failed: ${out}")
endif()
# trace: exported profile must be Chrome trace-event JSON with the root
# query span, and the console summary must show the stage table.
set(trace_json "${WORK_DIR}/cli_e2e_trace.json")
execute_process(COMMAND ${CLI} trace --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                        --algorithm advanced --out ${trace_json}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "trace:")
  message(FATAL_ERROR "trace failed: ${out}")
endif()
file(READ ${trace_json} trace_content)
if(NOT trace_content MATCHES "\"traceEvents\":\\[" OR
   NOT trace_content MATCHES "\"name\":\"query\"")
  message(FATAL_ERROR "trace output is not a Chrome trace profile")
endif()
file(REMOVE ${trace_json})
# statsz: Prometheus text exposition with request counters and at least
# one per-stage histogram absorbed from the per-query traces.
execute_process(COMMAND ${CLI} statsz --data ${csv} --random 20 --repeat 2
                        --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "wsk_requests_total" OR
   NOT out MATCHES "wsk_stage_query_ms_bucket" OR
   NOT out MATCHES "wsk_window_request_rate{window=\"60s\"}" OR
   NOT out MATCHES "wsk_build_info{version=" OR
   NOT out MATCHES "wsk_trace_dropped_events_total" OR
   NOT out MATCHES "wsk_process_uptime_seconds")
  message(FATAL_ERROR "statsz failed: ${out}")
endif()
# statsz --top: the live dashboard mode over a mutating segmented backend;
# frames must show per-window rates and the background-merge counters.
execute_process(COMMAND ${CLI} statsz --data ${csv} --random 10 --seed 7
                        --live --mutations 150 --delta 32
                        --top --frames 2 --interval-ms 50
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "frame 2/2" OR
   NOT out MATCHES "window +requests" OR NOT out MATCHES "bg +merges" OR
   NOT out MATCHES "telemetry observed")
  message(FATAL_ERROR "statsz --top failed: ${out}")
endif()
# profiles: every request sampled; the listing shows retained profiles and
# the dump is a loadable Chrome trace.
set(profile_json "${WORK_DIR}/cli_e2e_profile.json")
execute_process(COMMAND ${CLI} profiles --data ${csv} --random 8 --seed 7
                        --dump ${profile_json}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "8 sampled profiles" OR
   NOT out MATCHES "\\[sampled\\]" OR NOT out MATCHES "wrote profile")
  message(FATAL_ERROR "profiles failed: ${out}")
endif()
file(READ ${profile_json} profile_content)
if(NOT profile_content MATCHES "\"traceEvents\":\\[")
  message(FATAL_ERROR "profiles dump is not a Chrome trace profile")
endif()
file(REMOVE ${profile_json})
execute_process(COMMAND ${CLI} serve --data ${csv} --random 30 --workers 4
                        --repeat 2 --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "served" OR NOT out MATCHES "cache")
  message(FATAL_ERROR "serve failed: ${out}")
endif()
# serve with a forced-slow threshold: every request lands in the slow log;
# the console lists the records and the JSONL sink holds structured lines
# whose stage breakdown explains the recorded wall.
set(slow_jsonl "${WORK_DIR}/cli_e2e_slow.jsonl")
execute_process(COMMAND ${CLI} serve --data ${csv} --random 10 --workers 2
                        --seed 7 --slow-min-ms 0.001 --slow-factor 0
                        --slow-log ${slow_jsonl}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "slow  #")
  message(FATAL_ERROR "serve --slow-log failed: ${out}")
endif()
file(READ ${slow_jsonl} slow_content)
if(NOT slow_content MATCHES "\"slow\":true" OR
   NOT slow_content MATCHES "\"wall_ms\":" OR
   NOT slow_content MATCHES "\"stages\":{")
  message(FATAL_ERROR "slow-query JSONL malformed: ${slow_content}")
endif()
file(REMOVE ${slow_jsonl})
# serve --shards: the same workload through the scatter-gather
# ShardCoordinator (docs/SHARDING.md); the metrics report must carry the
# aggregate and per-shard counters.
execute_process(COMMAND ${CLI} serve --data ${csv} --random 30 --workers 4
                        --repeat 2 --seed 7 --shards 2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "served" OR
   NOT out MATCHES "shards    count 2" OR NOT out MATCHES "shard.0")
  message(FATAL_ERROR "serve --shards failed: ${out}")
endif()
# live: mutations stream through the segmented backend while queries run;
# the final report must carry the segment counters and a dataset version.
execute_process(COMMAND ${CLI} live --data ${csv} --random 30 --workers 2
                        --mutations 150 --delta 64 --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dataset version" OR
   NOT out MATCHES "segments")
  message(FATAL_ERROR "live failed: ${out}")
endif()
# inspect: layout histograms for both formats; the v2+mmap run must report
# the v2 format byte, the map marker, and per-level lines down to the
# leaves.
execute_process(COMMAND ${CLI} inspect --data ${csv} --format v2 --mmap 1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "setr: format v2" OR
   NOT out MATCHES "kcr: format v2" OR NOT out MATCHES "\\[mmap\\]" OR
   NOT out MATCHES "\\(leaf\\)")
  message(FATAL_ERROR "inspect v2 failed: ${out}")
endif()
execute_process(COMMAND ${CLI} inspect --data ${csv} --format v1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "setr: format v1" OR
   out MATCHES "\\[mmap\\]")
  message(FATAL_ERROR "inspect v1 failed: ${out}")
endif()
file(REMOVE ${csv})
