# Drives wsk_cli through generate -> topk -> whynot -> explain -> trace ->
# statsz -> serve -> live -> inspect.
set(csv "${WORK_DIR}/cli_e2e.csv")
execute_process(COMMAND ${CLI} generate --out ${csv} --objects 2000
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}")
endif()
execute_process(COMMAND ${CLI} topk --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 5
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "top-5")
  message(FATAL_ERROR "topk failed: ${out}")
endif()
execute_process(COMMAND ${CLI} whynot --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                        --algorithm advanced
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whynot failed: ${out}")
endif()
execute_process(COMMAND ${CLI} explain --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explain failed: ${out}")
endif()
# trace: exported profile must be Chrome trace-event JSON with the root
# query span, and the console summary must show the stage table.
set(trace_json "${WORK_DIR}/cli_e2e_trace.json")
execute_process(COMMAND ${CLI} trace --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                        --algorithm advanced --out ${trace_json}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "trace:")
  message(FATAL_ERROR "trace failed: ${out}")
endif()
file(READ ${trace_json} trace_content)
if(NOT trace_content MATCHES "\"traceEvents\":\\[" OR
   NOT trace_content MATCHES "\"name\":\"query\"")
  message(FATAL_ERROR "trace output is not a Chrome trace profile")
endif()
file(REMOVE ${trace_json})
# statsz: Prometheus text exposition with request counters and at least
# one per-stage histogram absorbed from the per-query traces.
execute_process(COMMAND ${CLI} statsz --data ${csv} --random 20 --repeat 2
                        --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "wsk_requests_total" OR
   NOT out MATCHES "wsk_stage_query_ms_bucket")
  message(FATAL_ERROR "statsz failed: ${out}")
endif()
execute_process(COMMAND ${CLI} serve --data ${csv} --random 30 --workers 4
                        --repeat 2 --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "served" OR NOT out MATCHES "cache")
  message(FATAL_ERROR "serve failed: ${out}")
endif()
# serve --shards: the same workload through the scatter-gather
# ShardCoordinator (docs/SHARDING.md); the metrics report must carry the
# aggregate and per-shard counters.
execute_process(COMMAND ${CLI} serve --data ${csv} --random 30 --workers 4
                        --repeat 2 --seed 7 --shards 2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "served" OR
   NOT out MATCHES "shards    count 2" OR NOT out MATCHES "shard.0")
  message(FATAL_ERROR "serve --shards failed: ${out}")
endif()
# live: mutations stream through the segmented backend while queries run;
# the final report must carry the segment counters and a dataset version.
execute_process(COMMAND ${CLI} live --data ${csv} --random 30 --workers 2
                        --mutations 150 --delta 64 --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dataset version" OR
   NOT out MATCHES "segments")
  message(FATAL_ERROR "live failed: ${out}")
endif()
# inspect: layout histograms for both formats; the v2+mmap run must report
# the v2 format byte, the map marker, and per-level lines down to the
# leaves.
execute_process(COMMAND ${CLI} inspect --data ${csv} --format v2 --mmap 1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "setr: format v2" OR
   NOT out MATCHES "kcr: format v2" OR NOT out MATCHES "\\[mmap\\]" OR
   NOT out MATCHES "\\(leaf\\)")
  message(FATAL_ERROR "inspect v2 failed: ${out}")
endif()
execute_process(COMMAND ${CLI} inspect --data ${csv} --format v1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "setr: format v1" OR
   out MATCHES "\\[mmap\\]")
  message(FATAL_ERROR "inspect v1 failed: ${out}")
endif()
file(REMOVE ${csv})
