# Drives wsk_cli through generate -> topk -> whynot -> explain -> serve.
set(csv "${WORK_DIR}/cli_e2e.csv")
execute_process(COMMAND ${CLI} generate --out ${csv} --objects 2000
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}")
endif()
execute_process(COMMAND ${CLI} topk --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 5
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "top-5")
  message(FATAL_ERROR "topk failed: ${out}")
endif()
execute_process(COMMAND ${CLI} whynot --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                        --algorithm advanced
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whynot failed: ${out}")
endif()
execute_process(COMMAND ${CLI} explain --data ${csv} --x 0.5 --y 0.5
                        --keywords "term1 term3" --k 3 --missing 42
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explain failed: ${out}")
endif()
execute_process(COMMAND ${CLI} serve --data ${csv} --random 30 --workers 4
                        --repeat 2 --seed 7
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "served" OR NOT out MATCHES "cache")
  message(FATAL_ERROR "serve failed: ${out}")
endif()
file(REMOVE ${csv})
