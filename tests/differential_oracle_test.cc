// Differential harness (ROADMAP: correctness tooling): every why-not
// algorithm runs against the brute-force oracle over randomized seeded
// instances, plus metamorphic invariants on a rotating subset of seeds.
//
// Failures print the scenario's one-line description — paste the seed into
// wsk::testing::MakeScenario (with ScenarioOptions{.vary_threads = true})
// to reproduce the exact instance locally.
//
// The suite is sharded into 4 ctest entries via GTEST_TOTAL_SHARDS /
// GTEST_SHARD_INDEX (see tests/CMakeLists.txt), so the 260 seeds run in
// parallel and stay within the per-test timeout under sanitizers.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "testing/metamorphic.h"
#include "testing/oracle.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 260;  // inclusive; acceptance floor is 200

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

testing::ScenarioOptions DifferentialOptions() {
  testing::ScenarioOptions opts;
  opts.vary_threads = true;  // exercise the parallel paths (TSan in CI)
  return opts;
}

// A solver callback over a freshly built engine: metamorphic checks hand
// transformed datasets in, so the indexes must be rebuilt per call.
testing::WhyNotSolver EngineSolver(WhyNotAlgorithm algorithm) {
  return [algorithm](const Dataset& dataset, const SpatialKeywordQuery& query,
                     const std::vector<ObjectId>& missing,
                     const WhyNotOptions& options) -> StatusOr<WhyNotResult> {
    WhyNotEngine::Config config;
    config.node_capacity = 16;
    StatusOr<std::unique_ptr<WhyNotEngine>> engine =
        WhyNotEngine::Build(&dataset, config);
    if (!engine.ok()) return engine.status();
    return engine.value()->Answer(algorithm, query, missing, options);
  };
}

class DifferentialOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialOracleTest, AlgorithmsMatchOracle) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, DifferentialOptions());
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  const testing::OracleResult oracle = testing::SolveWhyNotOracle(
      scenario->dataset, scenario->query, scenario->missing,
      scenario->options.lambda);

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> built =
      WhyNotEngine::Build(&scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::unique_ptr<WhyNotEngine>& engine = built.value();

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    StatusOr<WhyNotResult> got = engine->Answer(
        algorithm, scenario->query, scenario->missing, scenario->options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const WhyNotResult& result = got.value();

    EXPECT_EQ(result.already_in_result, oracle.already_in_result);
    EXPECT_EQ(result.stats.initial_rank, oracle.initial_rank);
    if (oracle.already_in_result) {
      EXPECT_TRUE(result.refined.doc == scenario->query.doc)
          << "got " << result.refined.doc.ToString();
      EXPECT_EQ(result.refined.k, scenario->query.k);
      continue;
    }

    // The headline check: the minimum penalty must match the oracle
    // bit-exactly (both sides share PenaltyModel and Score arithmetic).
    EXPECT_EQ(result.refined.penalty, oracle.best.penalty);

    // The returned refinement must be the canonical co-optimal winner.
    EXPECT_TRUE(result.refined.doc == oracle.best.doc)
        << "got " << result.refined.doc.ToString() << " want "
        << oracle.best.doc.ToString() << " among "
        << oracle.co_optimal.size() << " co-optimal refinements";
    EXPECT_EQ(result.refined.edit_distance, oracle.best.edit_distance);
    EXPECT_EQ(result.refined.rank, oracle.best.rank);
    EXPECT_EQ(result.refined.k, oracle.best.k);
  }
}

// Metamorphic invariants are several times the cost of a plain comparison
// (each check re-solves a transformed instance, rebuilding both indexes),
// so each seed runs one invariant, rotated by seed, for every algorithm.
TEST_P(DifferentialOracleTest, MetamorphicInvariants) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, DifferentialOptions());
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    const testing::WhyNotSolver solver = EngineSolver(algorithm);
    testing::InvariantOutcome outcome;
    switch (seed % 4) {
      case 0:
        outcome = testing::CheckDominatedInsertion(
            scenario->dataset, scenario->query, scenario->missing,
            scenario->options, solver);
        break;
      case 1:
        outcome = testing::CheckGeometryInvariance(
            scenario->dataset, scenario->query, scenario->missing,
            scenario->options, solver, /*scale=*/4.0, /*dx=*/-3.5,
            /*dy=*/7.25);
        break;
      case 2:
        outcome = testing::CheckVocabularyPermutation(
            scenario->dataset, scenario->query, scenario->missing,
            scenario->options, solver, /*perm_seed=*/seed);
        break;
      default:
        outcome = testing::CheckZeroPenaltyIff(scenario->dataset,
                                               scenario->query,
                                               scenario->missing,
                                               scenario->options, solver);
        break;
    }
    if (!outcome.applicable) continue;  // premise did not hold for this seed
    EXPECT_TRUE(outcome.passed) << outcome.message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracleTest,
                         ::testing::Range<uint64_t>(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
