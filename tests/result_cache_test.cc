#include "service/result_cache.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "data/query.h"

namespace wsk {
namespace {

SpatialKeywordQuery MakeQuery(double x = 0.25, double y = 0.75,
                              uint32_t k = 10, double alpha = 0.5) {
  SpatialKeywordQuery q;
  q.loc = Point{x, y};
  q.k = k;
  q.alpha = alpha;
  q.doc = KeywordSet{3, 1, 7};
  return q;
}

constexpr double kQuantum = 1e-6;

TEST(FingerprintTest, IdenticalQueriesCollide) {
  EXPECT_EQ(FingerprintTopK(MakeQuery(), kQuantum),
            FingerprintTopK(MakeQuery(), kQuantum));
}

TEST(FingerprintTest, KeywordOrderIsCanonical) {
  SpatialKeywordQuery a = MakeQuery();
  a.doc = KeywordSet{7, 3, 1};
  SpatialKeywordQuery b = MakeQuery();
  b.doc = KeywordSet{1, 1, 3, 7};  // duplicates collapse too
  EXPECT_EQ(FingerprintTopK(a, kQuantum), FingerprintTopK(b, kQuantum));
}

TEST(FingerprintTest, LocationQuantization) {
  // Within a quantum cell: same key. A cell apart: different key.
  EXPECT_EQ(FingerprintTopK(MakeQuery(0.25), kQuantum),
            FingerprintTopK(MakeQuery(0.25 + kQuantum * 0.2), kQuantum));
  EXPECT_NE(FingerprintTopK(MakeQuery(0.25), kQuantum),
            FingerprintTopK(MakeQuery(0.25 + kQuantum * 10), kQuantum));
}

TEST(FingerprintTest, ParametersThatChangeAnswersChangeKeys) {
  EXPECT_NE(FingerprintTopK(MakeQuery(0.25, 0.75, 10), kQuantum),
            FingerprintTopK(MakeQuery(0.25, 0.75, 11), kQuantum));
  EXPECT_NE(FingerprintTopK(MakeQuery(0.25, 0.75, 10, 0.5), kQuantum),
            FingerprintTopK(MakeQuery(0.25, 0.75, 10, 0.6), kQuantum));
  SpatialKeywordQuery other_doc = MakeQuery();
  other_doc.doc = KeywordSet{1, 3};
  EXPECT_NE(FingerprintTopK(MakeQuery(), kQuantum),
            FingerprintTopK(other_doc, kQuantum));
}

TEST(FingerprintTest, TopKAndWhyNotNeverCollide) {
  WhyNotOptions options;
  EXPECT_NE(FingerprintTopK(MakeQuery(), kQuantum),
            FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(), {1},
                              options, kQuantum));
}

TEST(FingerprintTest, WhyNotMissingSetIsCanonical) {
  WhyNotOptions options;
  const auto a = FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(),
                                   {5, 2, 9}, options, kQuantum);
  const auto b = FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(),
                                   {9, 5, 2, 5}, options, kQuantum);
  EXPECT_EQ(a, b);
  const auto c = FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(),
                                   {5, 2}, options, kQuantum);
  EXPECT_NE(a, c);
}

TEST(FingerprintTest, WhyNotAlgorithmAndLambdaAreKeyed) {
  WhyNotOptions options;
  const auto kcr = FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(),
                                     {1}, options, kQuantum);
  const auto bs = FingerprintWhyNot(WhyNotAlgorithm::kBasic, MakeQuery(), {1},
                                    options, kQuantum);
  EXPECT_NE(kcr, bs);

  WhyNotOptions other_lambda = options;
  other_lambda.lambda = 0.9;
  EXPECT_NE(kcr, FingerprintWhyNot(WhyNotAlgorithm::kKcrBased, MakeQuery(),
                                   {1}, other_lambda, kQuantum));
}

TEST(FingerprintTest, OptimizationSwitchesAreNotKeyed) {
  // opt_* / num_threads don't change answers (differential-tested), so
  // they must share cache entries.
  WhyNotOptions a;
  WhyNotOptions b;
  b.num_threads = 8;
  b.opt_early_stop = !b.opt_early_stop;
  b.opt_enumeration_order = !b.opt_enumeration_order;
  EXPECT_EQ(FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, MakeQuery(), {1}, a,
                              kQuantum),
            FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, MakeQuery(), {1}, b,
                              kQuantum));
}

std::shared_ptr<const ResultCache::Entry> MakeEntry(double score) {
  auto entry = std::make_shared<ResultCache::Entry>();
  entry->topk.push_back(ScoredObject{0, score});
  return entry;
}

TEST(ResultCacheTest, LookupMissThenHit) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", MakeEntry(0.5));
  const auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->topk[0].score, 0.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert("a", MakeEntry(1));
  cache.Insert("b", MakeEntry(2));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // promotes a; b is now coldest
  cache.Insert("c", MakeEntry(3));        // evicts b
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, InsertRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Insert("a", MakeEntry(1));
  cache.Insert("a", MakeEntry(9));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->topk[0].score, 9);
}

TEST(ResultCacheTest, EvictedEntrySurvivesViaSharedPtr) {
  ResultCache cache(1);
  cache.Insert("a", MakeEntry(1));
  const auto held = cache.Lookup("a");
  cache.Insert("b", MakeEntry(2));  // evicts a
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  ASSERT_NE(held, nullptr);  // the handed-out entry is still intact
  EXPECT_DOUBLE_EQ(held->topk[0].score, 1);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Insert("a", MakeEntry(1));
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled lookups aren't counted
}

TEST(ResultCacheTest, ClearEmptiesButKeepsStats) {
  ResultCache cache(4);
  cache.Insert("a", MakeEntry(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

}  // namespace
}  // namespace wsk
