// Cache-on/off differential (docs/STORAGE.md "Node cache"): every why-not
// algorithm must return the *identical* refined query with the decoded-node
// cache enabled and disabled — same keywords, k, rank, edit distance, and
// penalty. The cache's contract is bit-identical reads (a cached node is
// exactly what a fresh decode produces), so even tie-breaks must not
// drift. Runs over seeded randomized instances (same generator as the
// oracle suite); failures print the seed-bearing scenario description.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 120;

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

class CacheDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheDifferentialTest, CacheOnOffIdentical) {
  const uint64_t seed = GetParam();
  testing::ScenarioOptions opts;
  opts.vary_threads = true;  // cover the parallel BS path under TSan
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, opts);
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  // Small nodes and a small cache so the traversal actually cycles through
  // hits, misses, and evictions instead of fitting entirely in budget.
  WhyNotEngine::Config config;
  config.node_capacity = 16;
  config.node_cache_bytes = 64 << 10;
  StatusOr<std::unique_ptr<WhyNotEngine>> built =
      WhyNotEngine::Build(&scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::unique_ptr<WhyNotEngine>& engine = built.value();
  ASSERT_NE(engine->node_cache(), nullptr);
  engine->node_cache()->set_verify_fingerprints(true);

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    WhyNotOptions with_cache = scenario->options;
    with_cache.use_node_cache = true;
    WhyNotOptions without_cache = scenario->options;
    without_cache.use_node_cache = false;

    StatusOr<WhyNotResult> on =
        engine->Answer(algorithm, scenario->query, scenario->missing,
                       with_cache);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    StatusOr<WhyNotResult> off =
        engine->Answer(algorithm, scenario->query, scenario->missing,
                       without_cache);
    ASSERT_TRUE(off.ok()) << off.status().ToString();

    EXPECT_EQ(on.value().already_in_result, off.value().already_in_result);
    const RefinedQuery& a = on.value().refined;
    const RefinedQuery& b = off.value().refined;
    EXPECT_EQ(a.doc, b.doc) << a.doc.ToString() << " vs " << b.doc.ToString();
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.edit_distance, b.edit_distance);
    // Bit-identical reads imply bit-identical penalties — exact double
    // equality, no tolerance.
    EXPECT_EQ(a.penalty, b.penalty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheDifferentialTest,
                         ::testing::Range(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
