#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/query.h"
#include "test_util.h"

namespace wsk {
namespace {

TEST(DatasetTest, AddAssignsSequentialIds) {
  Dataset d;
  EXPECT_EQ(d.Add(Point{0, 0}, KeywordSet{1}), 0u);
  EXPECT_EQ(d.Add(Point{1, 1}, KeywordSet{2}), 1u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.object(1).loc, (Point{1, 1}));
}

TEST(DatasetTest, AddByStringsInternsKeywords) {
  Dataset d;
  d.Add(Point{0, 0}, {"pizza", "wifi"});
  d.Add(Point{1, 0}, {"pizza"});
  EXPECT_EQ(d.vocabulary().num_terms(), 2u);
  EXPECT_EQ(d.vocabulary().DocumentFrequency(d.vocabulary().Find("pizza")),
            2u);
}

TEST(DatasetTest, BoundsAndDiagonal) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1});
  d.Add(Point{3, 4}, KeywordSet{1});
  EXPECT_DOUBLE_EQ(d.diagonal(), 5.0);
  EXPECT_EQ(d.bounding_rect(), (Rect{0, 0, 3, 4}));
}

TEST(DatasetTest, DegenerateDiagonalIsOne) {
  Dataset d;
  EXPECT_DOUBLE_EQ(d.diagonal(), 1.0);
  d.Add(Point{2, 2}, KeywordSet{1});
  EXPECT_DOUBLE_EQ(d.diagonal(), 1.0);  // single point
}

TEST(DatasetTest, UnionDocs) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1, 2});
  d.Add(Point{1, 0}, KeywordSet{2, 3});
  EXPECT_EQ(d.UnionDocs({0, 1}), (KeywordSet{1, 2, 3}));
  EXPECT_EQ(d.UnionDocs({}), KeywordSet());
}

TEST(QueryTest, ScoreMatchesPaperExample) {
  TermId t1, t2, t3;
  Dataset d = testing::Figure1Dataset(&t1, &t2, &t3);
  const SpatialKeywordQuery q = testing::Figure1Query(t1, t2);
  ASSERT_DOUBLE_EQ(d.diagonal(), 1.0);
  EXPECT_NEAR(Score(d.object(2), q, d.diagonal()), 0.58, 0.01);   // m
  EXPECT_NEAR(Score(d.object(0), q, d.diagonal()), 0.35, 0.001);  // o1
  EXPECT_NEAR(Score(d.object(1), q, d.diagonal()), 0.615, 0.005); // o2
  EXPECT_NEAR(Score(d.object(3), q, d.diagonal()), 0.70, 0.001);  // o3
}

TEST(QueryTest, BruteForceTopKOrdering) {
  TermId t1, t2, t3;
  Dataset d = testing::Figure1Dataset(&t1, &t2, &t3);
  SpatialKeywordQuery q = testing::Figure1Query(t1, t2);
  q.k = 3;
  const auto top = BruteForceTopK(d, q);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 3u);  // o3
  EXPECT_EQ(top[1].id, 1u);  // o2
  EXPECT_EQ(top[2].id, 2u);  // m
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
}

TEST(QueryTest, BruteForceRankMatchesExample) {
  TermId t1, t2, t3;
  Dataset d = testing::Figure1Dataset(&t1, &t2, &t3);
  const SpatialKeywordQuery q = testing::Figure1Query(t1, t2);
  EXPECT_EQ(BruteForceRank(d, q, 2), 3u);  // m has rank 3
  EXPECT_EQ(BruteForceRank(d, q, 3), 1u);  // o3 is top
}

TEST(QueryTest, RankCountsStrictDominanceOnly) {
  Dataset d;
  // Two objects with identical score; both must have rank 1.
  d.Add(Point{0, 0}, KeywordSet{1});
  d.Add(Point{0, 0}, KeywordSet{1});
  d.Add(Point{5, 5}, KeywordSet{2});
  SpatialKeywordQuery q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet{1};
  q.alpha = 0.5;
  EXPECT_EQ(BruteForceRank(d, q, 0), 1u);
  EXPECT_EQ(BruteForceRank(d, q, 1), 1u);
  EXPECT_EQ(BruteForceRank(d, q, 2), 3u);
}

TEST(QueryTest, TopKSmallerThanKReturnsAll) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1});
  SpatialKeywordQuery q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet{1};
  q.k = 10;
  q.alpha = 0.3;
  EXPECT_EQ(BruteForceTopK(d, q).size(), 1u);
}

}  // namespace
}  // namespace wsk
