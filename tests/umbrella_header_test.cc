// Compilation test for the umbrella header: including wsk.h alone must
// expose the whole public API.
#include "wsk.h"

#include <gtest/gtest.h>

namespace wsk {
namespace {

TEST(UmbrellaHeaderTest, PublicApiIsReachable) {
  Dataset dataset;
  dataset.Add(Point{0.2, 0.2}, {"alpha", "beta"});
  dataset.Add(Point{0.8, 0.8}, {"beta", "gamma"});
  dataset.Add(Point{0.5, 0.1}, {"alpha"});

  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_objects, 3u);

  WhyNotEngine::Config config;
  config.node_capacity = 4;
  auto engine = WhyNotEngine::Build(&dataset, config).value();

  SpatialKeywordQuery query;
  query.loc = Point{0.2, 0.2};
  query.doc = dataset.vocabulary().InternAll({"alpha"});
  query.k = 1;
  query.alpha = 0.5;
  const auto top = engine->TopK(query).value();
  ASSERT_EQ(top.size(), 1u);
  // Object 2 matches the query keywords perfectly (TSim = 1), which beats
  // object 0's co-location: 0.5*0.657 + 0.5*1 > 0.5*1 + 0.5*0.5.
  EXPECT_EQ(top[0].id, 2u);

  // Why-not + the extensions are all visible through the umbrella.
  WhyNotOptions options;
  EXPECT_TRUE(engine->Answer(WhyNotAlgorithm::kAdvanced, query, {1}, options)
                  .ok());
  EXPECT_TRUE(RefineAlpha(dataset, query, {1}, 0.5).ok());
  EXPECT_TRUE(RefineLocationApproximate(dataset, query, {1}, 0.5).ok());
  EXPECT_TRUE(ExplainMiss(*engine, query, 1).ok());
  EXPECT_TRUE(VerifySetRTree(engine->setr_tree()).ok());
  EXPECT_TRUE(VerifyKcrTree(engine->kcr_tree()).ok());
}

}  // namespace
}  // namespace wsk
