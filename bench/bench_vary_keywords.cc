// Fig. 5 — varying the number of initial query keywords ∈ {2, 4, 6, 8}.
// The candidate set grows exponentially, which dominates BS's cost.
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (uint32_t kw : {2u, 4u, 6u, 8u}) {
    WorkloadSpec spec;
    spec.num_keywords = kw;
    spec.max_universe = kw + 7;  // keyword growth is the sweep variable
    spec.seed = 5000 + kw;
    WhyNotOptions options;
    RegisterAllAlgorithms("keywords=" + std::to_string(kw), spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
