// Fig. 8 — varying the missing object's initial rank ∈ {31, 51, 101, 151,
// 201} for a top-10 initial query.
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (uint32_t rank : {31u, 51u, 101u, 151u, 201u}) {
    WorkloadSpec spec;
    spec.k0 = 10;
    spec.missing_position = rank;
    spec.seed = 8000 + rank;
    WhyNotOptions options;
    RegisterAllAlgorithms("rank=" + std::to_string(rank), spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
