// Fig. 11 — pruning ability of the Section IV-C optimizations. Runs the
// basic-algorithm family with each optimization enabled alone and all
// together, over 4- and 6-keyword workloads:
//   Opt1 = early stop (Eqn 6 rank bound)
//   Opt2 = enumeration order + order-based termination
//   Opt3 = keyword-set filtering via the dominator cache
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotAlgorithm;
  using wsk::WhyNotOptions;
  using namespace wsk::bench;

  struct Variant {
    const char* name;
    bool opt1, opt2, opt3;
  };
  const Variant variants[] = {
      {"none", false, false, false}, {"opt1", true, false, false},
      {"opt2", false, true, false},  {"opt3", false, false, true},
      {"all", true, true, true},
  };

  for (uint32_t kw : {4u, 6u}) {
    for (const Variant& v : variants) {
      WorkloadSpec spec;
      spec.num_keywords = kw;
      spec.max_universe = kw + 7;
      spec.seed = 11000 + kw;
      WhyNotOptions options;
      options.opt_early_stop = v.opt1;
      options.opt_enumeration_order = v.opt2;
      options.opt_keyword_filtering = v.opt3;
      RegisterOne("kw=" + std::to_string(kw) + "/" + v.name,
                  WhyNotAlgorithm::kAdvanced, spec, options);
    }
  }
  return RunRegisteredBenchmarks(argc, argv);
}
