// Candidate-scoring kernel microbenchmarks (docs/PERF.md).
//
// Two layers:
//   1. Synthetic kernels — multi-candidate scoring (scalar TextualSimilarity
//      per candidate vs. footprint + ScoreAllCandidates) and the sorted-set
//      intersection paths (scalar merge / galloping / SIMD block). The
//      BM_KernelSpeedup points time both paths in the same process and emit
//      a `speedup` counter (scalar ns / kernel ns) — a machine-relative
//      ratio that tools/check_bench_regression.py can gate on without
//      caring about absolute CPU speed.
//   2. End-to-end — AdvancedBS and KcR with use_score_kernel on vs. off on
//      the shared bench dataset, for BENCH_BASELINE.json.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/macros.h"
#include "common/rng.h"
#include "observability/trace.h"
#include "text/keyword_set.h"
#include "text/score_kernel.h"
#include "text/similarity.h"

namespace {

using wsk::CandidateMask;
using wsk::CandidateUniverse;
using wsk::Footprint;
using wsk::KeywordSet;
using wsk::Rng;
using wsk::SimilarityModel;
using wsk::TermId;

constexpr uint32_t kVocab = 4096;

KeywordSet MakeDoc(Rng& rng, size_t len) {
  std::vector<TermId> terms;
  terms.reserve(len);
  while (terms.size() < len) {
    const TermId t = static_cast<TermId>(rng.NextUint64(kVocab));
    if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
      terms.push_back(t);
    }
  }
  return KeywordSet(std::move(terms));
}

// Fixture shared by the scalar/kernel multi-candidate benchmarks: one
// universe of `universe_size` terms, `num_cands` random non-empty subsets of
// it, and `num_docs` documents that overlap the universe about half the
// time (the realistic why-not mix: some terms shared with doc0 ∪ M.doc,
// some not).
struct ScoringFixture {
  KeywordSet universe_set;
  CandidateUniverse universe;
  std::vector<KeywordSet> cand_sets;
  std::vector<CandidateMask> cand_masks;
  std::vector<KeywordSet> docs;
  std::vector<Footprint> fps;  // memoized, as WhyNotScorer does per query

  ScoringFixture(size_t universe_size, size_t num_cands, size_t num_docs,
                 uint64_t seed) {
    Rng rng(seed);
    universe_set = MakeDoc(rng, universe_size);
    universe = CandidateUniverse::Build(universe_set);
    WSK_CHECK(universe.valid());
    for (size_t c = 0; c < num_cands; ++c) {
      std::vector<TermId> terms;
      for (size_t i = 0; i < universe_size; ++i) {
        if (rng.NextBool(0.4)) terms.push_back(universe.term(i));
      }
      if (terms.empty()) terms.push_back(universe.term(0));
      cand_sets.emplace_back(std::move(terms));
      cand_masks.push_back(universe.MaskOf(cand_sets.back()));
    }
    for (size_t d = 0; d < num_docs; ++d) {
      std::vector<TermId> terms;
      const size_t len = 4 + rng.NextUint64(24);
      while (terms.size() < len) {
        const TermId t = rng.NextBool(0.5)
                             ? universe.term(rng.NextUint64(universe.size()))
                             : static_cast<TermId>(rng.NextUint64(kVocab));
        if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
          terms.push_back(t);
        }
      }
      docs.emplace_back(std::move(terms));
      fps.push_back(universe.FootprintOf(docs.back()));
    }
  }

  // Each path consumes every score through DoNotOptimize — no artificial
  // reduction chain on either side, and nothing gets dead-code-eliminated.
  int RunScalar() const {
    for (const KeywordSet& doc : docs) {
      for (const KeywordSet& cand : cand_sets) {
        benchmark::DoNotOptimize(
            wsk::TextualSimilarity(doc, cand, SimilarityModel::kJaccard));
      }
    }
    return 0;
  }

  // Footprints already memoized — the steady state of a why-not run, where
  // WhyNotScorer computes each object's footprint once per invocation and
  // every candidate batch after that reuses it.
  int RunKernel(std::vector<double>* out) const {
    for (const Footprint& fp : fps) {
      ScoreAllCandidates(fp, cand_masks, SimilarityModel::kJaccard, out);
      benchmark::DoNotOptimize(out->data());
      benchmark::ClobberMemory();
    }
    return 0;
  }

  // Worst case: the footprint is rebuilt for every (doc, batch) pair, i.e.
  // the batch is the only consumer (KcR leaf scoring against one batch).
  int RunKernelCold(std::vector<double>* out) const {
    for (const KeywordSet& doc : docs) {
      const Footprint fp = universe.FootprintOf(doc);
      ScoreAllCandidates(fp, cand_masks, SimilarityModel::kJaccard, out);
      benchmark::DoNotOptimize(out->data());
      benchmark::ClobberMemory();
    }
    return 0;
  }
};

void BM_ScoreCandidates_Scalar(benchmark::State& state) {
  const ScoringFixture fx(state.range(0), state.range(1), 32, 991);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.RunScalar());
  }
  state.SetItemsProcessed(state.iterations() * 32 * state.range(1));
}

void BM_ScoreCandidates_Kernel(benchmark::State& state) {
  const ScoringFixture fx(state.range(0), state.range(1), 32, 991);
  std::vector<double> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.RunKernel(&out));
  }
  state.SetItemsProcessed(state.iterations() * 32 * state.range(1));
}

void BM_ScoreCandidates_KernelCold(benchmark::State& state) {
  const ScoringFixture fx(state.range(0), state.range(1), 32, 991);
  std::vector<double> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.RunKernelCold(&out));
  }
  state.SetItemsProcessed(state.iterations() * 32 * state.range(1));
}

// Times both paths back-to-back and reports the ratio. The acceptance
// criterion for the kernel layer is speedup >= 3 at (universe <= 64,
// >= 8 candidates); the regression checker enforces it via this counter.
void BM_KernelSpeedup(benchmark::State& state) {
  const ScoringFixture fx(state.range(0), state.range(1), 32, 991);
  std::vector<double> out;
  // Self-calibrating rep count: long enough for a stable ratio everywhere.
  auto time_ns = [](auto&& fn) {
    using Clock = std::chrono::steady_clock;
    uint64_t reps = 1;
    for (;;) {
      const auto start = Clock::now();
      for (uint64_t r = 0; r < reps; ++r) benchmark::DoNotOptimize(fn());
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      if (ns > 2e7) return ns / static_cast<double>(reps);
      reps *= 4;
    }
  };
  double scalar_ns = 0.0;
  double kernel_ns = 0.0;
  for (auto _ : state) {
    scalar_ns = time_ns([&fx] { return fx.RunScalar(); });
    kernel_ns = time_ns([&fx, &out] { return fx.RunKernel(&out); });
  }
  state.counters["scalar_ns"] = scalar_ns;
  state.counters["kernel_ns"] = kernel_ns;
  state.counters["speedup"] = scalar_ns / kernel_ns;
}

// Tracing on vs. off over the same end-to-end why-not workload, timed
// back-to-back like BM_KernelSpeedup. `trace_overhead` (traced time /
// untraced time) is a machine-relative ratio that the regression checker
// caps hard (--max-trace-overhead): attaching a full-capacity recorder
// must stay cheap. The default nullptr path is covered by the ordinary
// avg_ms / avg_io envelope of every other end-to-end benchmark, which all
// run untraced.
void BM_TraceOverhead(benchmark::State& state,
                      wsk::WhyNotAlgorithm algorithm) {
  using namespace wsk::bench;
  WorkloadSpec spec;
  spec.num_keywords = 6;
  spec.max_universe = 18;
  spec.seed = 17001;
  wsk::WhyNotEngine& engine = SharedEngine();
  const std::vector<WhyNotCase> cases =
      MakeCases(engine, spec, EnvQueriesPerPoint());
  // One recorder per pass, as wsk_cli trace uses one per invocation; the
  // event-buffer allocation is part of the cost being measured.
  auto run = [&](bool traced) {
    std::unique_ptr<wsk::TraceRecorder> recorder;
    if (traced) recorder = std::make_unique<wsk::TraceRecorder>();
    uint64_t sink = 0;
    for (const WhyNotCase& c : cases) {
      wsk::WhyNotOptions options;
      options.trace = recorder.get();
      auto got = engine.Answer(algorithm, c.query, c.missing, options);
      WSK_CHECK(got.ok());
      sink += got.value().stats.candidates_total;
    }
    return sink;
  };
  auto time_ns = [](auto&& fn) {
    using Clock = std::chrono::steady_clock;
    uint64_t reps = 1;
    for (;;) {
      const auto start = Clock::now();
      for (uint64_t r = 0; r < reps; ++r) benchmark::DoNotOptimize(fn());
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      if (ns > 5e7) return ns / static_cast<double>(reps);
      reps *= 4;
    }
  };
  double untraced_ns = 0.0;
  double traced_ns = 0.0;
  for (auto _ : state) {
    untraced_ns = time_ns([&run] { return run(false); });
    traced_ns = time_ns([&run] { return run(true); });
  }
  state.counters["untraced_ms"] = untraced_ns / 1e6;
  state.counters["traced_ms"] = traced_ns / 1e6;
  state.counters["trace_overhead"] = traced_ns / untraced_ns;
}

// Sorted-set intersection paths at representative (small, large) shapes.
void MakePair(size_t na, size_t nb, std::vector<TermId>* a,
              std::vector<TermId>* b) {
  Rng rng(7 * na + nb);
  const KeywordSet sa = MakeDoc(rng, na);
  const KeywordSet sb = MakeDoc(rng, nb);
  a->assign(sa.begin(), sa.end());
  b->assign(sb.begin(), sb.end());
}

void BM_Intersect_Scalar(benchmark::State& state) {
  std::vector<TermId> a, b;
  MakePair(state.range(0), state.range(1), &a, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsk::internal::IntersectionSizeScalar(
        a.data(), a.size(), b.data(), b.size()));
  }
}

void BM_Intersect_Galloping(benchmark::State& state) {
  std::vector<TermId> a, b;
  MakePair(state.range(0), state.range(1), &a, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsk::internal::IntersectionSizeGalloping(
        a.data(), a.size(), b.data(), b.size()));
  }
}

void BM_Intersect_Block(benchmark::State& state) {
  std::vector<TermId> a, b;
  MakePair(state.range(0), state.range(1), &a, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsk::internal::IntersectionSizeBlock(
        a.data(), a.size(), b.data(), b.size()));
  }
}

void BM_Intersect_Dispatch(benchmark::State& state) {
  Rng rng(7 * state.range(0) + state.range(1));
  const KeywordSet a = MakeDoc(rng, state.range(0));
  const KeywordSet b = MakeDoc(rng, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectionSize(b));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using wsk::WhyNotAlgorithm;
  using wsk::WhyNotOptions;
  using namespace wsk::bench;

  // Multi-candidate scoring: universe x candidate-batch sweep.
  for (const auto& [u, c] : {std::pair<int64_t, int64_t>{12, 8},
                             {20, 64},
                             {40, 256},
                             {64, 512}}) {
    benchmark::RegisterBenchmark("ScoreCandidates/scalar", //
                                 BM_ScoreCandidates_Scalar)
        ->Args({u, c});
    benchmark::RegisterBenchmark("ScoreCandidates/kernel",
                                 BM_ScoreCandidates_Kernel)
        ->Args({u, c});
    benchmark::RegisterBenchmark("ScoreCandidates/kernel_cold",
                                 BM_ScoreCandidates_KernelCold)
        ->Args({u, c});
    benchmark::RegisterBenchmark("KernelSpeedup", BM_KernelSpeedup)
        ->Args({u, c})
        ->Iterations(1);
  }

  // Intersection paths: balanced, moderately skewed, heavily skewed.
  for (const auto& [na, nb] : {std::pair<int64_t, int64_t>{16, 16},
                               {32, 256},
                               {8, 2048}}) {
    benchmark::RegisterBenchmark("Intersect/scalar", BM_Intersect_Scalar)
        ->Args({na, nb});
    benchmark::RegisterBenchmark("Intersect/galloping",
                                 BM_Intersect_Galloping)
        ->Args({na, nb});
    benchmark::RegisterBenchmark("Intersect/block", BM_Intersect_Block)
        ->Args({na, nb});
    benchmark::RegisterBenchmark("Intersect/dispatch", BM_Intersect_Dispatch)
        ->Args({na, nb});
  }

  // End-to-end: kernel on vs. off for the two advanced algorithms. A
  // 6-keyword workload with a wider universe cap, so the candidate space is
  // large enough for per-candidate scoring to matter.
  for (const bool kernel : {true, false}) {
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
      WorkloadSpec spec;
      spec.num_keywords = 6;
      spec.max_universe = 18;
      spec.seed = 17001;
      WhyNotOptions options;
      options.use_score_kernel = kernel;
      RegisterOne(std::string("kernel=") + (kernel ? "on" : "off"), algorithm,
                  spec, options);
    }
  }
  // Tracing overhead: full-capacity recorder vs. nullptr on the same
  // workload (docs/OBSERVABILITY.md; gated by --max-trace-overhead).
  benchmark::RegisterBenchmark("TraceOverhead/AdvancedBS", BM_TraceOverhead,
                               WhyNotAlgorithm::kAdvanced)
      ->Iterations(1);
  benchmark::RegisterBenchmark("TraceOverhead/KcRBased", BM_TraceOverhead,
                               WhyNotAlgorithm::kKcrBased)
      ->Iterations(1);
  return RunRegisteredBenchmarks(argc, argv);
}
