// Fig. 6 — varying alpha ∈ {0.1, 0.3, 0.5, 0.7, 0.9}: the relative weight
// of spatial distance vs textual similarity in the ranking function.
#include "bench_common.h"

#include <cstdio>

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    WorkloadSpec spec;
    spec.alpha = alpha;
    spec.seed = 6000 + static_cast<uint64_t>(alpha * 10);
    WhyNotOptions options;
    char label[32];
    std::snprintf(label, sizeof(label), "alpha=%.1f", alpha);
    RegisterAllAlgorithms(label, spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
