// Fig. 12 — the approximate algorithm (Section VI-B): a top-10 query with
// 8 keywords, sampling the T highest-particularity candidate sets for
// T ∈ {100, 200, 400, 800}, against the exact algorithms. The interesting
// outputs are avg_ms (time saved) and avg_penalty (quality given up).
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;

  WorkloadSpec spec;
  spec.k0 = 10;
  spec.num_keywords = 8;
  spec.max_universe = 15;
  spec.seed = 12000;

  for (uint32_t sample : {100u, 200u, 400u, 800u}) {
    WhyNotOptions options;
    options.sample_size = sample;
    RegisterAllAlgorithms("sample=" + std::to_string(sample), spec, options);
  }
  WhyNotOptions exact;
  RegisterAllAlgorithms("sample=exact", spec, exact);
  return RunRegisteredBenchmarks(argc, argv);
}
