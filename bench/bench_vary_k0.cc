// Fig. 4 — varying k0 ∈ {3, 10, 30, 100} with the missing object at rank
// 5*k0 + 1. Reports avg query time and I/O for BS / AdvancedBS / KcRBased.
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (uint32_t k0 : {3u, 10u, 30u, 100u}) {
    WorkloadSpec spec;
    spec.k0 = k0;
    spec.missing_position = 5 * k0 + 1;
    spec.seed = 4000 + k0;
    WhyNotOptions options;
    RegisterAllAlgorithms("k0=" + std::to_string(k0), spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
