// Design-choice ablations (not figures from the paper):
//   * buffer size — how the I/O metric depends on the LRU buffer; the
//     paper fixes 4 MiB, DESIGN.md scales it with the dataset.
//   * node capacity — the paper fixes 100 entries/node; smaller nodes mean
//     deeper trees but finer-grained pruning for the KcR bounds.
// Each configuration builds its own private engine.
#include "bench_common.h"

#include "data/generator.h"

namespace {

using namespace wsk;
using namespace wsk::bench;

struct AblationEngine {
  Dataset dataset;
  std::unique_ptr<WhyNotEngine> engine;
};

AblationEngine* BuildAblationEngine(size_t buffer_bytes,
                                    uint32_t node_capacity) {
  auto* bundle = new AblationEngine();
  GeneratorConfig config;
  config.num_objects = EnvObjects() / 2;
  config.vocab_size = std::max<uint32_t>(100, config.num_objects / 5);
  config.seed = 31337;
  bundle->dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  engine_config.buffer_bytes = buffer_bytes;
  engine_config.node_capacity = node_capacity;
  bundle->engine =
      WhyNotEngine::Build(&bundle->dataset, engine_config).value();
  return bundle;
}

void RegisterConfig(const std::string& label, size_t buffer_bytes,
                    uint32_t node_capacity) {
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
    const std::string name =
        std::string(WhyNotAlgorithmName(algorithm)) + "/" + label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [buffer_bytes, node_capacity, algorithm](benchmark::State& state) {
          // One engine per configuration, cached across the two algorithms.
          static auto* engines =
              new std::map<std::pair<size_t, uint32_t>, AblationEngine*>();
          const auto key = std::make_pair(buffer_bytes, node_capacity);
          auto it = engines->find(key);
          if (it == engines->end()) {
            it = engines
                     ->emplace(key, BuildAblationEngine(buffer_bytes,
                                                        node_capacity))
                     .first;
          }
          WorkloadSpec spec;
          spec.seed = 14000;
          WhyNotOptions options;
          RunWhyNot(state, *it->second->engine, algorithm, spec, options);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (size_t kib : {64u, 256u, 1024u, 4096u}) {
    RegisterConfig("buffer_kib=" + std::to_string(kib), kib * 1024, 100);
  }
  for (uint32_t capacity : {25u, 50u, 100u, 200u}) {
    RegisterConfig("capacity=" + std::to_string(capacity), 512 * 1024,
                   capacity);
  }
  // Section V-D strategy: edit-distance batches (Algorithm 4) vs feeding
  // every candidate to one Algorithm 3 traversal.
  for (bool single : {false, true}) {
    WorkloadSpec spec;
    spec.seed = 14500;
    WhyNotOptions options;
    options.kcr_single_batch = single;
    RegisterOne(std::string("strategy=") + (single ? "single_batch"
                                                   : "ed_batches"),
                WhyNotAlgorithm::kKcrBased, spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
