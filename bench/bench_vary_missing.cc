// Fig. 9 — varying the number of missing objects ∈ {1, 2, 3, 4}. The
// initial query is a top-10 query with 4 keywords; missing objects are
// drawn from ranks in (10, 51] as in Section VII-B6. The candidate
// universe, and with it BS's cost, grows with every additional object.
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (uint32_t missing : {1u, 2u, 3u, 4u}) {
    WorkloadSpec spec;
    spec.k0 = 10;
    spec.num_keywords = 4;
    spec.num_missing = missing;
    spec.missing_position = 51;
    // The universe (and BS's 2^|universe| candidate count) must stay
    // bounded for the suite to finish; the paper's Fig. 9 shows the same
    // blow-up reaching ~500 s per query for BS at 4 missing objects.
    spec.max_universe = 13;
    spec.max_missing_doc = 4;
    spec.seed = 9000 + missing;
    WhyNotOptions options;
    RegisterAllAlgorithms("missing=" + std::to_string(missing), spec,
                          options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
