// Substrate micro-benchmark (not a paper figure): raw spatial keyword
// top-k latency and I/O on the SetR-tree vs the KcR-tree, for several k.
// Useful to sanity-check that the shared substrate behaves before reading
// the why-not figures.
#include "bench_common.h"

#include <unistd.h>

#include <chrono>

#include "common/rng.h"
#include "index/inverted_grid_index.h"
#include "index/topk.h"
#include "storage/node_codec_v2.h"

namespace {

std::vector<wsk::SpatialKeywordQuery> MakeQueries(const wsk::Dataset& dataset,
                                                  uint32_t k) {
  using namespace wsk;
  Rng rng(k * 31 + 7);
  std::vector<SpatialKeywordQuery> queries;
  for (int i = 0; i < 20; ++i) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset
                .object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
                .doc;
    q.k = k;
    q.alpha = 0.5;
    queries.push_back(q);
  }
  return queries;
}

void RunTopK(benchmark::State& state, const wsk::TopKSource& tree,
             wsk::IoStats& io, uint32_t k) {
  using namespace wsk;
  WhyNotEngine& engine = wsk::bench::SharedEngine();
  const std::vector<SpatialKeywordQuery> queries =
      MakeQueries(engine.dataset(), k);
  double total_io = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    for (const SpatialKeywordQuery& q : queries) {
      const uint64_t before = io.physical_reads();
      benchmark::DoNotOptimize(IndexTopK(tree, q).value());
      total_io += static_cast<double>(io.physical_reads() - before);
      ++runs;
    }
  }
  state.counters["avg_io"] = runs == 0 ? 0.0 : total_io / runs;
  state.counters["queries"] = static_cast<double>(runs);
}

// Repeated-traversal node access with the decoded-node cache on vs off,
// timed back-to-back over the identical warm workload. The acceptance
// criterion for the cache layer is cache_speedup >= 2 (docs/PERF.md); the
// regression checker enforces it via the `cache_speedup` counter
// (--min-cache-speedup). Both legs run against a warm buffer pool, so the
// ratio isolates what the cache saves: page fetches, node decoding, blob
// reads, and per-node artifact construction.
void RunNodeAccess(benchmark::State& state, const wsk::TopKSource& tree,
                   uint32_t k) {
  using namespace wsk;
  WhyNotEngine& engine = wsk::bench::SharedEngine();
  const std::vector<SpatialKeywordQuery> queries =
      MakeQueries(engine.dataset(), k);
  auto sweep = [&](bool use_cache) {
    uint64_t total = 0;
    for (const SpatialKeywordQuery& q : queries) {
      total += IndexTopK(tree, q, /*cancel=*/nullptr, use_cache).value().size();
    }
    return total;
  };
  // Warm both the buffer pool and the node cache before timing.
  benchmark::DoNotOptimize(sweep(false));
  benchmark::DoNotOptimize(sweep(true));
  // Self-calibrating rep count (same scheme as bench_kernels): long enough
  // for a stable ratio everywhere.
  auto time_ns = [](auto&& fn) {
    using Clock = std::chrono::steady_clock;
    uint64_t reps = 1;
    for (;;) {
      const auto start = Clock::now();
      for (uint64_t r = 0; r < reps; ++r) benchmark::DoNotOptimize(fn());
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      if (ns > 2e7) return ns / static_cast<double>(reps);
      reps *= 4;
    }
  };
  double off_ns = 0.0;
  double on_ns = 0.0;
  for (auto _ : state) {
    off_ns = time_ns([&sweep] { return sweep(false); });
    on_ns = time_ns([&sweep] { return sweep(true); });
  }
  state.counters["cache_off_ns"] = off_ns;
  state.counters["cache_on_ns"] = on_ns;
  state.counters["cache_speedup"] = off_ns / on_ns;
}

// v1-vs-v2 node decode (docs/STORAGE.md "v2 node format & mmap"): three
// sibling engines over the shared dataset — {v1 pread, v2 pread, v2 mmap}
// — each with the decoded-node cache disabled so every sweep re-decodes
// every record, timed over a full-tree breadth-first decode of both
// indexes. The buffered legs run against a warm buffer pool, so the
// ratios isolate the record format and read path: v1 pays the pool fetch,
// fixed-layout copy, and per-entry blob-store reads; v2 decodes inline
// delta-varints, and the mmap leg does so straight from the map with no
// page copy at all. The regression gates key off `decode_speedup`
// (v1 / v2+mmap, --min-decode-speedup) and `v2_size_ratio`
// (--max-v2-size-ratio).
template <typename Tree>
std::vector<wsk::PageId> CollectNodePages(const Tree& tree) {
  using namespace wsk;
  std::vector<PageId> pages;
  std::vector<PageId> frontier;
  if (tree.height() > 0) frontier.push_back(tree.SearchRoot());
  for (uint32_t level = tree.height(); level >= 1 && !frontier.empty();
       --level) {
    std::vector<PageId> next;
    for (PageId page : frontier) {
      pages.push_back(page);
      if (level > 1) {
        const auto node = tree.ReadNode(page).value();
        for (const auto& e : node.inner_entries) next.push_back(e.child);
      }
    }
    frontier = std::move(next);
  }
  return pages;
}

void RunNodeDecode(benchmark::State& state) {
  using namespace wsk;
  WhyNotEngine& shared = wsk::bench::SharedEngine();
  struct Leg {
    uint8_t format = kNodeFormatV2;
    bool mmap = false;
    std::unique_ptr<WhyNotEngine> engine;
    std::vector<PageId> setr_pages;
    std::vector<PageId> kcr_pages;
  };
  Leg legs[3];
  legs[0].format = kNodeFormatV1;
  legs[2].mmap = true;
  for (Leg& leg : legs) {
    WhyNotEngine::Config config;
    config.node_format = leg.format;
    config.mmap_reads = leg.mmap;
    config.node_cache_bytes = 0;  // raw decode cost, not the cache
    leg.engine = WhyNotEngine::Build(&shared.dataset(), config).value();
    leg.setr_pages = CollectNodePages(leg.engine->setr_tree());
    leg.kcr_pages = CollectNodePages(leg.engine->kcr_tree());
  }
  auto sweep = [](const Leg& leg) {
    size_t decoded = 0;
    for (PageId page : leg.setr_pages) {
      decoded += leg.engine->setr_tree()
                     .ReadDecodedNode(page, /*use_cache=*/false)
                     .value()
                     ->node.size();
    }
    for (PageId page : leg.kcr_pages) {
      decoded += leg.engine->kcr_tree()
                     .ReadDecodedNode(page, /*use_cache=*/false)
                     .value()
                     ->node.size();
    }
    return decoded;
  };
  // Warm the buffered legs' pools (the mapped leg has nothing to warm).
  for (const Leg& leg : legs) benchmark::DoNotOptimize(sweep(leg));
  auto time_ns = [](auto&& fn) {
    using Clock = std::chrono::steady_clock;
    uint64_t reps = 1;
    for (;;) {
      const auto start = Clock::now();
      for (uint64_t r = 0; r < reps; ++r) benchmark::DoNotOptimize(fn());
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      if (ns > 2e7) return ns / static_cast<double>(reps);
      reps *= 4;
    }
  };
  double ns[3] = {0.0, 0.0, 0.0};
  for (auto _ : state) {
    for (int i = 0; i < 3; ++i) {
      ns[i] = time_ns([&sweep, &leg = legs[i]] { return sweep(leg); });
    }
  }
  auto file_bytes = [](const WhyNotEngine& engine) {
    return static_cast<double>(
        (static_cast<uint64_t>(engine.setr_pager().num_pages()) +
         engine.kcr_pager().num_pages()) *
        engine.setr_pager().page_size());
  };
  const double v1_bytes = file_bytes(*legs[0].engine);
  const double v2_bytes = file_bytes(*legs[1].engine);
  const BackendIoSnapshot mapped_io = legs[2].engine->io_snapshot();
  state.counters["v1_decode_ns"] = ns[0];
  state.counters["v2_decode_ns"] = ns[1];
  state.counters["v2_mmap_decode_ns"] = ns[2];
  state.counters["v1_bytes"] = v1_bytes;
  state.counters["v2_bytes"] = v2_bytes;
  state.counters["v2_size_ratio"] = v2_bytes / v1_bytes;
  state.counters["decode_speedup"] = ns[0] / ns[2];
  state.counters["v2_mapped_reads"] =
      static_cast<double>(mapped_io.setr_mapped + mapped_io.kcr_mapped);
  state.counters["v2_physical_reads"] =
      static_cast<double>(mapped_io.setr_physical + mapped_io.kcr_physical);
}

// The inverted-file + grid baseline (related-work architecture) against
// the same workload.
struct InvertedBundle {
  std::string path;
  std::unique_ptr<wsk::Pager> pager;
  std::unique_ptr<wsk::BufferPool> pool;
  std::unique_ptr<wsk::InvertedGridIndex> index;
};

InvertedBundle& SharedInverted() {
  using namespace wsk;
  static auto* bundle = [] {
    auto* b = new InvertedBundle();
    b->path = "/tmp/wsk_bench_invgrid_" + std::to_string(getpid()) + ".idx";
    b->pager = Pager::Create(b->path).value();
    b->pool = std::make_unique<BufferPool>(b->pager.get(), 512 * 1024);
    InvertedGridIndex::Options options;
    b->index = InvertedGridIndex::Build(wsk::bench::SharedEngine().dataset(),
                                        b->pool.get(), options)
                   .value();
    b->pager->io_stats().Reset();
    return b;
  }();
  return *bundle;
}

void RunInvertedTopK(benchmark::State& state, uint32_t k) {
  using namespace wsk;
  InvertedBundle& bundle = SharedInverted();
  // Identical workload to the tree benchmarks.
  const std::vector<SpatialKeywordQuery> queries =
      MakeQueries(wsk::bench::SharedEngine().dataset(), k);
  double total_io = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    for (const SpatialKeywordQuery& q : queries) {
      const uint64_t before = bundle.pager->io_stats().physical_reads();
      benchmark::DoNotOptimize(bundle.index->TopK(q).value());
      total_io += static_cast<double>(
          bundle.pager->io_stats().physical_reads() - before);
      ++runs;
    }
  }
  state.counters["avg_io"] = runs == 0 ? 0.0 : total_io / runs;
  state.counters["queries"] = static_cast<double>(runs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsk::bench;
  for (uint32_t k : {1u, 10u, 100u}) {
    benchmark::RegisterBenchmark(
        ("topk/SetR/k=" + std::to_string(k)).c_str(),
        [k](benchmark::State& state) {
          auto& engine = SharedEngine();
          RunTopK(state, engine.setr_tree(), engine.setr_io(), k);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("topk/KcR/k=" + std::to_string(k)).c_str(),
        [k](benchmark::State& state) {
          auto& engine = SharedEngine();
          RunTopK(state, engine.kcr_tree(), engine.kcr_io(), k);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("topk/InvertedGrid/k=" + std::to_string(k)).c_str(),
        [k](benchmark::State& state) { RunInvertedTopK(state, k); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Decoded-node cache on/off over the warm k=10 workload (one datapoint
  // per tree; the ratio is what the regression gate cares about).
  benchmark::RegisterBenchmark("node_access/SetR/k=10",
                               [](benchmark::State& state) {
                                 auto& engine = SharedEngine();
                                 RunNodeAccess(state, engine.setr_tree(), 10);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("node_access/KcR/k=10",
                               [](benchmark::State& state) {
                                 auto& engine = SharedEngine();
                                 RunNodeAccess(state, engine.kcr_tree(), 10);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  // v1 vs v2 record format and read path over both indexes (one datapoint;
  // the regression gates care about decode_speedup and v2_size_ratio).
  benchmark::RegisterBenchmark(
      "node_decode/all",
      [](benchmark::State& state) { RunNodeDecode(state); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  const int rc = RunRegisteredBenchmarks(argc, argv);
  std::remove(SharedInverted().path.c_str());
  return rc;
}
