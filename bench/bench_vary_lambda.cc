// Fig. 7 — varying lambda ∈ {0.1, 0.3, 0.5, 0.7, 0.9}: the penalty weight
// between enlarging k and editing the keywords. BS ignores lambda; the
// optimized algorithms prune better for small lambda because the basic
// refined query seeds p_c = lambda.
#include "bench_common.h"

#include <cstdio>

int main(int argc, char** argv) {
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    WorkloadSpec spec;
    spec.seed = 7000 + static_cast<uint64_t>(lambda * 10);
    WhyNotOptions options;
    options.lambda = lambda;
    char label[32];
    std::snprintf(label, sizeof(label), "lambda=%.1f", lambda);
    RegisterAllAlgorithms(label, spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
