// Fig. 10 — varying the number of worker threads ∈ {1, 2, 4, 8} for the
// parallelized AdvancedBS and KcRBased (Section IV-C4 / VII-B7).
//
// Note: wall-clock speedup tops out at the machine's core count; on a
// single-core container the series is expected to stay flat (EXPERIMENTS.md
// discusses this hardware substitution).
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotAlgorithm;
  using wsk::WhyNotOptions;
  using namespace wsk::bench;
  for (int threads : {1, 2, 4, 8}) {
    WorkloadSpec spec;
    spec.seed = 10000;  // identical workload across thread counts
    WhyNotOptions options;
    options.num_threads = threads;
    const std::string label = "threads=" + std::to_string(threads);
    RegisterOne(label, WhyNotAlgorithm::kAdvanced, spec, options);
    RegisterOne(label, WhyNotAlgorithm::kKcrBased, spec, options);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
