#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "data/generator.h"

namespace wsk::bench {

namespace {

uint32_t EnvU32(const char* name, uint32_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  WSK_CHECK_MSG(parsed > 0, "bad %s=%s", name, value);
  return static_cast<uint32_t>(parsed);
}

struct EngineBundle {
  Dataset dataset;
  std::unique_ptr<WhyNotEngine> engine;
};

EngineBundle* BuildBundle(const DatasetSpec& spec) {
  auto* bundle = new EngineBundle();
  GeneratorConfig config;
  config.num_objects = spec.objects != 0 ? spec.objects : EnvObjects();
  config.vocab_size = spec.vocab != 0
                          ? spec.vocab
                          : EnvU32("WSK_BENCH_VOCAB",
                                   std::max<uint32_t>(
                                       100, config.num_objects / 5));
  config.seed = spec.seed;
  bundle->dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  // The paper pairs a 4 MiB buffer with indexes hundreds of MiB large; at
  // bench scale the same ratio needs a smaller buffer or every query would
  // be served from memory and the I/O series would flatline at zero.
  engine_config.buffer_bytes =
      static_cast<size_t>(EnvU32("WSK_BENCH_BUFFER_KB", 512)) * 1024;
  bundle->engine =
      WhyNotEngine::Build(&bundle->dataset, engine_config).value();
  std::fprintf(stderr,
               "[wsk-bench] dataset: %u objects, %u distinct terms "
               "(seed %llu); index node capacity %u, page %u B, "
               "buffer %zu B\n",
               static_cast<uint32_t>(bundle->dataset.size()),
               bundle->dataset.vocabulary().num_terms(),
               static_cast<unsigned long long>(config.seed),
               engine_config.node_capacity, engine_config.page_size,
               engine_config.buffer_bytes);
  return bundle;
}

}  // namespace

uint32_t EnvObjects() { return EnvU32("WSK_BENCH_OBJECTS", 20000); }

uint32_t EnvQueriesPerPoint() { return EnvU32("WSK_BENCH_QUERIES", 3); }

WhyNotEngine& SharedEngine() {
  static EngineBundle* bundle = BuildBundle(DatasetSpec{});
  return *bundle->engine;
}

WhyNotEngine& EngineFor(const DatasetSpec& spec) {
  // Keyed cache; engines live for the process (leaked deliberately: bench
  // binaries exit right after).
  static auto* cache = new std::map<std::pair<uint32_t, uint64_t>,
                                    EngineBundle*>();
  const auto key = std::make_pair(spec.objects, spec.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, BuildBundle(spec)).first;
  }
  return *it->second->engine;
}

std::vector<WhyNotCase> MakeCases(const WhyNotEngine& engine,
                                  const WorkloadSpec& spec, uint32_t count) {
  const Dataset& dataset = engine.dataset();
  WSK_CHECK(dataset.size() > spec.missing_position + spec.num_missing + 1);
  Rng rng(spec.seed);
  std::vector<WhyNotCase> cases;
  int attempts = 0;
  while (cases.size() < count && attempts < 500) {
    ++attempts;
    WhyNotCase c;
    c.query.loc = Point{rng.NextDouble(), rng.NextDouble()};
    c.query.k = spec.k0;
    c.query.alpha = spec.alpha;

    // Query keywords: start from a random object's doc (so the query is
    // plausible), then pad with further objects' terms until we have the
    // requested count.
    std::vector<TermId> terms;
    while (terms.size() < spec.num_keywords) {
      const SpatialObject& pivot = dataset.object(
          static_cast<ObjectId>(rng.NextUint64(dataset.size())));
      for (TermId t : pivot.doc) {
        if (terms.size() >= spec.num_keywords) break;
        if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
          terms.push_back(t);
        }
      }
    }
    c.query.doc = KeywordSet(std::move(terms));

    // Missing objects drawn from stream positions; the paper's default is
    // the single object at position 5*k0+1. For multiple missing objects,
    // positions are spread over (k0, missing_position].
    bool ok = true;
    for (uint32_t i = 0; i < spec.num_missing && ok; ++i) {
      const uint32_t position =
          spec.num_missing == 1
              ? spec.missing_position
              : spec.k0 + 1 +
                    static_cast<uint32_t>(rng.NextUint64(
                        spec.missing_position - spec.k0));
      auto id = engine.ObjectAtPosition(c.query, position);
      if (!id.ok()) {
        ok = false;
        break;
      }
      if (std::find(c.missing.begin(), c.missing.end(), id.value()) !=
          c.missing.end()) {
        ok = false;  // duplicate position draw; retry the case
        break;
      }
      if (spec.max_missing_doc > 0 &&
          dataset.object(id.value()).doc.size() > spec.max_missing_doc) {
        ok = false;
        break;
      }
      // Ties can place the object inside the top-k; skip such cases.
      if (engine.Rank(c.query, id.value()).value() <= spec.k0) {
        ok = false;
        break;
      }
      c.missing.push_back(id.value());
    }
    if (ok && spec.max_universe > 0) {
      KeywordSet universe = c.query.doc;
      for (ObjectId m : c.missing) {
        universe = universe.Union(dataset.object(m).doc);
      }
      if (universe.size() > spec.max_universe) ok = false;
    }
    if (ok) cases.push_back(std::move(c));
  }
  WSK_CHECK_MSG(!cases.empty(), "could not generate any why-not case");
  return cases;
}

void RunWhyNot(benchmark::State& state, WhyNotEngine& engine,
               WhyNotAlgorithm algorithm, const WorkloadSpec& spec,
               const WhyNotOptions& options) {
  const std::vector<WhyNotCase> cases =
      MakeCases(engine, spec, EnvQueriesPerPoint());

  // Warm the buffer (steady-state measurement, as the paper's averages).
  {
    const auto warm =
        engine.Answer(algorithm, cases[0].query, cases[0].missing, options);
    WSK_CHECK_MSG(warm.ok(), "%s", warm.status().ToString().c_str());
  }

  double total_ms = 0.0;
  double total_io = 0.0;
  double total_penalty = 0.0;
  double total_evaluated = 0.0;
  double total_filtered = 0.0;
  double total_skipped = 0.0;
  double total_pruned = 0.0;
  double total_nodes = 0.0;
  uint64_t runs = 0;
  for (auto _ : state) {
    for (const WhyNotCase& c : cases) {
      const auto result = engine.Answer(algorithm, c.query, c.missing,
                                        options);
      WSK_CHECK_MSG(result.ok(), "%s", result.status().ToString().c_str());
      const WhyNotResult& r = result.value();
      total_ms += r.stats.elapsed_ms;
      total_io += static_cast<double>(r.stats.io_reads);
      total_penalty += r.refined.penalty;
      total_evaluated += static_cast<double>(r.stats.candidates_evaluated);
      total_filtered += static_cast<double>(r.stats.candidates_filtered);
      total_skipped +=
          static_cast<double>(r.stats.candidates_skipped_order);
      total_pruned +=
          static_cast<double>(r.stats.candidates_pruned_bounds);
      total_nodes += static_cast<double>(r.stats.nodes_expanded);
      ++runs;
    }
  }
  state.counters["avg_ms"] = total_ms / runs;
  state.counters["avg_io"] = total_io / runs;
  state.counters["avg_penalty"] = total_penalty / runs;
  state.counters["cand_eval"] = total_evaluated / runs;
  // Pruning-effectiveness columns (docs/OBSERVABILITY.md): together with
  // cand_eval these partition the enumerated candidate set.
  state.counters["cand_filtered"] = total_filtered / runs;
  state.counters["cand_skipped"] = total_skipped / runs;
  state.counters["cand_pruned"] = total_pruned / runs;
  state.counters["nodes_expanded"] = total_nodes / runs;
}

void RegisterOne(const std::string& label, WhyNotAlgorithm algorithm,
                 const WorkloadSpec& spec, const WhyNotOptions& options) {
  const std::string name =
      std::string(WhyNotAlgorithmName(algorithm)) + "/" + label;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [algorithm, spec, options](benchmark::State& state) {
        RunWhyNot(state, SharedEngine(), algorithm, spec, options);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void RegisterAllAlgorithms(const std::string& label, const WorkloadSpec& spec,
                           const WhyNotOptions& options) {
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    RegisterOne(label, algorithm, spec, options);
  }
}

namespace {

// Tees console output while keeping a copy of every run for the JSON dump.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      runs_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void WriteJson(const std::string& path, const std::vector<
                   benchmark::BenchmarkReporter::Run>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  WSK_CHECK_MSG(f != nullptr, "cannot open --json file %s", path.c_str());
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"objects\": %u,\n", EnvObjects());
  std::fprintf(f, "    \"queries_per_point\": %u\n", EnvQueriesPerPoint());
  std::fprintf(f, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    std::string name;
    JsonEscape(run.benchmark_name(), &name);
    const double iterations = static_cast<double>(run.iterations);
    const double ns_per_op =
        iterations > 0 ? run.real_accumulated_time * 1e9 / iterations : 0.0;
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n", name.c_str());
    std::fprintf(f, "      \"iterations\": %llu,\n",
                 static_cast<unsigned long long>(run.iterations));
    std::fprintf(f, "      \"ns_per_op\": %.17g,\n", ns_per_op);
    std::fprintf(f, "      \"counters\": {");
    bool first = true;
    for (const auto& [counter_name, counter] : run.counters) {
      std::string escaped;
      JsonEscape(counter_name, &escaped);
      std::fprintf(f, "%s\n        \"%s\": %.17g", first ? "" : ",",
                   escaped.c_str(), static_cast<double>(counter.value));
      first = false;
    }
    std::fprintf(f, "%s      }\n    }%s\n", first ? "" : "\n      ",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[wsk-bench] wrote %zu benchmark results to %s\n",
               runs.size(), path.c_str());
}

}  // namespace

int RunRegisteredBenchmarks(int argc, char** argv) {
  // Strip --json before Google Benchmark sees the argument list.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonTeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    WriteJson(json_path, reporter.runs());
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace wsk::bench
