// Service-layer benchmark — aggregate throughput and tail latency of the
// concurrent QueryService under a mixed top-k / why-not workload, swept
// over the worker-thread count ∈ {1, 2, 4, 8}.
//
// Unlike the figure benchmarks (which measure one algorithm invocation at
// a time), this drives the whole service path — admission, result cache,
// deadline token, metrics — with every request submitted up front so the
// workers stay saturated. Counters:
//   qps             completed requests / wall second
//   p50_ms, p99_ms  service-side latency percentiles (histogram buckets)
//   cache_hit_rate  fraction of requests answered from the result cache
//
// Wall-clock scaling beyond the machine's core count is not expected; on a
// single-core container the series stays flat (EXPERIMENTS.md discusses
// this hardware substitution).
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "service/query_service.h"

namespace {

using namespace wsk;
using namespace wsk::bench;

struct MixedWorkload {
  std::vector<SpatialKeywordQuery> topk;
  std::vector<WhyNotCase> whynot;
};

// One fixed workload reused across all thread counts. It needs enough
// *distinct* cache keys to keep 8 workers busy (a tiny workload collapses
// into concurrent duplicate misses and measures redundancy, not scaling),
// so each why-not case is fanned out into several top-k variants with
// different k — distinct keys over the same locality.
const MixedWorkload& SharedWorkload() {
  static const MixedWorkload* workload = [] {
    WorkloadSpec spec;
    spec.seed = 77007;
    auto* w = new MixedWorkload();
    w->whynot = MakeCases(SharedEngine(), spec, 8 * EnvQueriesPerPoint());
    for (const WhyNotCase& c : w->whynot) {
      SpatialKeywordQuery q = c.query;
      for (uint32_t dk = 0; dk < 4; ++dk) {
        q.k = c.query.k + dk;
        w->topk.push_back(q);
      }
    }
    return w;
  }();
  return *workload;
}

void RunService(benchmark::State& state, int workers) {
  WhyNotEngine& engine = SharedEngine();
  const MixedWorkload& workload = SharedWorkload();

  QueryServiceConfig config;
  config.num_workers = workers;
  config.max_queue = 0;      // unbounded: measure execution, not shedding
  config.max_inflight = 0;   // (0 disables each admission limit)
  config.cache_capacity = 1024;
  // Round 0 is all misses (real engine work, where scaling shows); round 1
  // re-submits the same keys so the hit path and its accounting are
  // exercised under concurrency too.
  constexpr int kRounds = 2;

  for (auto _ : state) {
    QueryService service(&engine, config);
    std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
    std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>> wf;
    Timer wall;
    for (int round = 0; round < kRounds; ++round) {
      for (const SpatialKeywordQuery& q : workload.topk) {
        tf.push_back(service.SubmitTopK(q));
      }
      for (const WhyNotCase& c : workload.whynot) {
        wf.push_back(service.SubmitWhyNot(WhyNotAlgorithm::kKcrBased, c.query,
                                          c.missing, WhyNotOptions{}));
      }
    }
    uint64_t ok = 0, hits = 0;
    for (auto& f : tf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
      ++ok;
      if (r.value().cache_hit) ++hits;
    }
    for (auto& f : wf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
      ++ok;
      if (r.value().cache_hit) ++hits;
    }
    const double wall_s = wall.ElapsedSeconds();

    // Merge the two latency histograms' percentiles by taking the worse
    // (they share bucket boundaries, so max is a sound upper bound).
    const LatencyHistogram::Snapshot st =
        service.metrics().histogram("latency.topk.ms").TakeSnapshot();
    const LatencyHistogram::Snapshot sw =
        service.metrics().histogram("latency.whynot.ms").TakeSnapshot();
    state.counters["qps"] =
        static_cast<double>(ok) / (wall_s > 0.0 ? wall_s : 1e-9);
    state.counters["p50_ms"] = std::max(st.p50_ms, sw.p50_ms);
    state.counters["p99_ms"] = std::max(st.p99_ms, sw.p99_ms);
    state.counters["cache_hit_rate"] =
        ok > 0 ? static_cast<double>(hits) / static_cast<double>(ok) : 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int workers : {1, 2, 4, 8}) {
    const std::string name = "service/mixed/workers:" + std::to_string(workers);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [workers](benchmark::State& state) { RunService(state, workers); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunRegisteredBenchmarks(argc, argv);
}
