// Service-layer benchmark — aggregate throughput and tail latency of the
// concurrent QueryService under a mixed top-k / why-not workload, swept
// over the worker-thread count ∈ {1, 2, 4, 8}.
//
// Unlike the figure benchmarks (which measure one algorithm invocation at
// a time), this drives the whole service path — admission, result cache,
// deadline token, metrics — with every request submitted up front so the
// workers stay saturated. Counters:
//   qps             completed requests / wall second
//   p50_ms, p99_ms  service-side latency percentiles (histogram buckets)
//   cache_hit_rate  fraction of requests answered from the result cache
//
// Wall-clock scaling beyond the machine's core count is not expected; on a
// single-core container the series stays flat (EXPERIMENTS.md discusses
// this hardware substitution).
//
// The streaming-ingest series (service/ingest/...) measures the live
// backend (docs/SEGMENTS.md): a SegmentedEngine absorbing a stream of
// inserts through the service while top-k queries run against it, with
// background compaction on and off. Counters:
//   insert_rate     mutations / wall second
//   p99_ms          service-side top-k latency under ingest
//   merges          background compactions completed during the run
//
// The shard-count series (service/shards/n:{1,2,4,8}) measures the
// scatter-gather ShardCoordinator (docs/SHARDING.md) on a *clustered*
// dataset with localized queries — the workload where the per-shard
// MaxScore bound should let the coordinator skip most tiles. Counters:
//   qps, p50_ms, p99_ms   as for service/mixed
//   shards_visited        shard top-k probes actually executed
//   shards_pruned         shards skipped by the cross-shard bound
//   pruned_rate           shards_pruned / (visited + pruned)
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/generator.h"
#include "segment/segmented_engine.h"
#include "service/query_service.h"
#include "shard/shard_coordinator.h"

namespace {

using namespace wsk;
using namespace wsk::bench;

struct MixedWorkload {
  std::vector<SpatialKeywordQuery> topk;
  std::vector<WhyNotCase> whynot;
};

// One fixed workload reused across all thread counts. It needs enough
// *distinct* cache keys to keep 8 workers busy (a tiny workload collapses
// into concurrent duplicate misses and measures redundancy, not scaling),
// so each why-not case is fanned out into several top-k variants with
// different k — distinct keys over the same locality.
const MixedWorkload& SharedWorkload() {
  static const MixedWorkload* workload = [] {
    WorkloadSpec spec;
    spec.seed = 77007;
    auto* w = new MixedWorkload();
    w->whynot = MakeCases(SharedEngine(), spec, 8 * EnvQueriesPerPoint());
    for (const WhyNotCase& c : w->whynot) {
      SpatialKeywordQuery q = c.query;
      for (uint32_t dk = 0; dk < 4; ++dk) {
        q.k = c.query.k + dk;
        w->topk.push_back(q);
      }
    }
    return w;
  }();
  return *workload;
}

void RunService(benchmark::State& state, int workers) {
  WhyNotEngine& engine = SharedEngine();
  const MixedWorkload& workload = SharedWorkload();

  QueryServiceConfig config;
  config.num_workers = workers;
  config.max_queue = 0;      // unbounded: measure execution, not shedding
  config.max_inflight = 0;   // (0 disables each admission limit)
  config.cache_capacity = 1024;
  // Round 0 is all misses (real engine work, where scaling shows); round 1
  // re-submits the same keys so the hit path and its accounting are
  // exercised under concurrency too.
  constexpr int kRounds = 2;

  for (auto _ : state) {
    QueryService service(&engine, config);
    std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
    std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>> wf;
    Timer wall;
    for (int round = 0; round < kRounds; ++round) {
      for (const SpatialKeywordQuery& q : workload.topk) {
        tf.push_back(service.SubmitTopK(q));
      }
      for (const WhyNotCase& c : workload.whynot) {
        wf.push_back(service.SubmitWhyNot(WhyNotAlgorithm::kKcrBased, c.query,
                                          c.missing, WhyNotOptions{}));
      }
    }
    uint64_t ok = 0, hits = 0;
    for (auto& f : tf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
      ++ok;
      if (r.value().cache_hit) ++hits;
    }
    for (auto& f : wf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
      ++ok;
      if (r.value().cache_hit) ++hits;
    }
    const double wall_s = wall.ElapsedSeconds();

    // Merge the two latency histograms' percentiles by taking the worse
    // (they share bucket boundaries, so max is a sound upper bound).
    const LatencyHistogram::Snapshot st =
        service.metrics().histogram("latency.topk.ms").TakeSnapshot();
    const LatencyHistogram::Snapshot sw =
        service.metrics().histogram("latency.whynot.ms").TakeSnapshot();
    state.counters["qps"] =
        static_cast<double>(ok) / (wall_s > 0.0 ? wall_s : 1e-9);
    state.counters["p50_ms"] = std::max(st.p50_ms, sw.p50_ms);
    state.counters["p99_ms"] = std::max(st.p99_ms, sw.p99_ms);
    state.counters["cache_hit_rate"] =
        ok > 0 ? static_cast<double>(hits) / static_cast<double>(ok) : 0.0;
  }
}

// Streaming ingest against the live backend. Inserts stream through the
// service's mutation path on the bench thread (the backend serializes
// writers anyway) with a top-k query submitted every few inserts, so the
// latency histogram reflects queries racing rotations and merges.
void RunIngest(benchmark::State& state, bool auto_merge) {
  const Dataset& seed = SharedEngine().dataset();
  const MixedWorkload& workload = SharedWorkload();
  // Keyword strings drawn from the seed vocabulary so inserted objects
  // interact with the query terms.
  std::vector<std::string> terms;
  for (TermId t = 0; t < std::min(seed.vocabulary().num_terms(), 256u); ++t) {
    terms.push_back(seed.vocabulary().TermString(t));
  }
  const uint32_t num_inserts =
      std::max(500u, EnvObjects() / 8);  // scale with the dataset knob

  for (auto _ : state) {
    SegmentedEngine::Config engine_config;
    // Size the delta so the stream forces ~8 rotations regardless of the
    // WSK_BENCH_OBJECTS knob — otherwise merge:on never actually merges.
    engine_config.delta_capacity = std::max(64u, num_inserts / 8);
    engine_config.auto_merge = auto_merge;
    auto engine = SegmentedEngine::Build(seed, engine_config).value();

    QueryServiceConfig config;
    config.num_workers = 2;
    config.max_queue = 0;
    config.max_inflight = 0;
    config.cache_capacity = 0;  // every query hits the engine
    QueryService service(engine.get(), config);

    std::vector<std::future<StatusOr<QueryService::TopKResponse>>> qf;
    Rng rng(0x1236e57);
    Timer wall;
    for (uint32_t i = 0; i < num_inserts; ++i) {
      const uint64_t r = rng.Next();
      const auto inserted = service.Insert(
          Point{rng.NextDouble(), rng.NextDouble()},
          {terms[r % terms.size()], terms[(r >> 20) % terms.size()]});
      WSK_CHECK_MSG(inserted.ok(), "%s",
                    inserted.status().ToString().c_str());
      if (i % 8 == 0) {
        qf.push_back(service.SubmitTopK(
            workload.topk[(i / 8) % workload.topk.size()]));
      }
    }
    for (auto& f : qf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
    }
    const double wall_s = wall.ElapsedSeconds();
    if (auto_merge) {
      // Join any in-flight background merge (outside the timed window) so
      // the merges counter reflects completed compactions, not a race with
      // the worker; this adds at most one final catch-up pass.
      WSK_CHECK(engine->ForceMerge().ok());
    }

    const LatencyHistogram::Snapshot topk_lat =
        service.metrics().histogram("latency.topk.ms").TakeSnapshot();
    const SegmentCountersSnapshot seg = engine->segment_counters();
    state.counters["insert_rate"] = static_cast<double>(num_inserts) /
                                    (wall_s > 0.0 ? wall_s : 1e-9);
    state.counters["p99_ms"] = topk_lat.p99_ms;
    state.counters["merges"] = static_cast<double>(seg.merges);
  }
}

// Clustered dataset + query-at-an-object workload shared by every shard
// count, so the series varies only the topology. Tight clusters and a
// near-zero uniform background make the STR tiles spatially disjoint,
// which is what gives the per-shard bound its pruning power.
struct ShardWorkload {
  Dataset dataset;
  std::vector<SpatialKeywordQuery> queries;
};

const ShardWorkload& SharedShardWorkload() {
  static const ShardWorkload* workload = [] {
    auto* w = new ShardWorkload();
    GeneratorConfig gen;
    gen.num_objects = std::max(2000u, EnvObjects() / 4);
    gen.vocab_size = std::max(200u, gen.num_objects / 5);
    gen.num_clusters = 8;
    gen.cluster_stddev = 0.01;
    gen.uniform_fraction = 0.02;
    gen.seed = 0x5ead5;
    w->dataset = GenerateDataset(gen);
    // Queries anchored at dataset objects and distance-dominant (high
    // alpha): a tile's keyword union nearly always covers the query
    // terms, so the text half of the shard bound saturates — it is the
    // spatial term that drops far tiles below the running kth score.
    Rng rng(0x711e5);
    const uint32_t count = 64 * EnvQueriesPerPoint();
    for (uint32_t i = 0; i < count; ++i) {
      const SpatialObject& anchor =
          w->dataset.objects()[rng.Next() % w->dataset.objects().size()];
      SpatialKeywordQuery q;
      q.loc = anchor.loc;
      q.doc = anchor.doc;
      q.k = 10;
      q.alpha = 0.9;
      w->queries.push_back(q);
    }
    return w;
  }();
  return *workload;
}

void RunShards(benchmark::State& state, uint32_t num_shards) {
  const ShardWorkload& workload = SharedShardWorkload();

  ShardCoordinator::Config shard_config;
  shard_config.num_shards = num_shards;

  QueryServiceConfig config;
  config.num_workers = 4;
  config.max_queue = 0;
  config.max_inflight = 0;
  config.cache_capacity = 0;  // every query fans out to the shards

  for (auto _ : state) {
    auto coordinator =
        ShardCoordinator::Build(workload.dataset, shard_config).value();
    QueryService service(coordinator.get(), config);

    std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
    Timer wall;
    for (const SpatialKeywordQuery& q : workload.queries) {
      tf.push_back(service.SubmitTopK(q));
    }
    uint64_t ok = 0;
    for (auto& f : tf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
      ++ok;
    }
    const double wall_s = wall.ElapsedSeconds();

    const LatencyHistogram::Snapshot lat =
        service.metrics().histogram("latency.topk.ms").TakeSnapshot();
    const ShardCountersSnapshot sh = coordinator->shard_counters();
    const double probes =
        static_cast<double>(sh.shards_visited + sh.shards_pruned);
    state.counters["qps"] =
        static_cast<double>(ok) / (wall_s > 0.0 ? wall_s : 1e-9);
    state.counters["p50_ms"] = lat.p50_ms;
    state.counters["p99_ms"] = lat.p99_ms;
    state.counters["shards_visited"] = static_cast<double>(sh.shards_visited);
    state.counters["shards_pruned"] = static_cast<double>(sh.shards_pruned);
    state.counters["pruned_rate"] =
        probes > 0.0 ? static_cast<double>(sh.shards_pruned) / probes : 0.0;
  }
}

// Batched-execution series (service/batch/n:{1,4,8,16}, docs/BATCHING.md):
// a keyword-skewed pool — Zipf-duplicated hot query templates with small
// k / location / alpha variations plus exact duplicates — drives the
// batch collector at several max sizes, with the result cache OFF so
// neither run answers from cache (fairness: the comparison is traversal
// work, not caching). Each iteration first runs the identical workload
// through a solo (batching-disabled) service in-process. Counters:
//   qps, p50_ms, p99_ms   as for service/mixed
//   batch_speedup         solo wall time / batched wall time
//   decode_amortization   solo-equivalent node openings / physical node
//                         expansions ((expanded + shared) / expanded) —
//                         the deterministic witness of the same reduction
//   dedup                 duplicate requests answered by a shared slot
struct BatchWorkload {
  std::vector<SpatialKeywordQuery> queries;
};

const BatchWorkload& SharedBatchWorkload() {
  static const BatchWorkload* workload = [] {
    auto* w = new BatchWorkload();
    const Dataset& data = SharedEngine().dataset();
    Rng rng(0xba7c4ed);
    std::vector<SpatialKeywordQuery> templates;
    for (int t = 0; t < 8; ++t) {
      const SpatialObject& anchor =
          data.objects()[rng.Next() % data.objects().size()];
      SpatialKeywordQuery q;
      q.loc = anchor.loc;
      std::vector<TermId> terms(anchor.doc.begin(), anchor.doc.end());
      if (terms.size() > 4) terms.resize(4);
      q.doc = KeywordSet(std::move(terms));
      q.k = 10;
      q.alpha = 0.5;
      templates.push_back(std::move(q));
    }
    const uint32_t count = 96 * EnvQueriesPerPoint();
    for (uint32_t i = 0; i < count; ++i) {
      // Zipf-like skew via the geometric rank of a uniform draw: template
      // 0 dominates, so concurrent requests overlap most of their
      // frontiers — the workload batching is built for.
      const uint64_t draw = rng.Next();
      const size_t rank =
          (draw == 0 ? 0 : static_cast<size_t>(__builtin_ctzll(draw))) %
          templates.size();
      SpatialKeywordQuery q = templates[rank];
      switch (i % 4) {
        case 0:  // exact duplicate: within-batch dedupe fodder
          break;
        case 1:  // pagination-style: same ranking, deeper cutoff — these
                 // walk the identical node sequence and share every decode
          q.k = 10 + i % 7;
          break;
        case 2:
          q.k = 5 + i % 11;
          break;
        case 3:  // a diverging variant: different alpha reorders the
                 // frontier, so this slot mostly pays its own decodes
          q.alpha = 0.6;
          break;
      }
      w->queries.push_back(std::move(q));
    }
    return w;
  }();
  return *workload;
}

struct BatchRunStats {
  double wall_s = 0.0;
  LatencyHistogram::Snapshot lat;
  uint64_t expanded = 0;
  uint64_t shared = 0;
  uint64_t dedup = 0;
};

BatchRunStats RunBatchWorkload(const QueryServiceConfig& config) {
  WhyNotEngine& engine = SharedEngine();
  const BatchWorkload& workload = SharedBatchWorkload();
  QueryService service(&engine, config);
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
  tf.reserve(workload.queries.size());
  Timer wall;
  for (const SpatialKeywordQuery& q : workload.queries) {
    tf.push_back(service.SubmitTopK(q));
  }
  for (auto& f : tf) {
    const auto r = f.get();
    WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
  }
  BatchRunStats stats;
  stats.wall_s = wall.ElapsedSeconds();
  stats.lat = service.metrics().histogram("latency.topk.ms").TakeSnapshot();
  stats.expanded =
      service.metrics().counter("prune.batch.nodes_expanded").value();
  stats.shared = service.metrics().counter("prune.batch.nodes_shared").value();
  stats.dedup = service.metrics().counter("batch.dedup").value();
  return stats;
}

void RunBatch(benchmark::State& state, size_t batch_n) {
  const size_t num_queries = SharedBatchWorkload().queries.size();
  QueryServiceConfig config;
  config.num_workers = 4;
  config.max_queue = 0;
  config.max_inflight = 0;
  config.cache_capacity = 0;  // fairness: no run answers from the cache

  for (auto _ : state) {
    const BatchRunStats solo = RunBatchWorkload(config);  // batching off
    BatchRunStats batched = solo;
    if (batch_n > 1) {
      QueryServiceConfig batch_config = config;
      batch_config.batch_max_size = batch_n;
      batch_config.batch_window_ms = 2.0;
      batched = RunBatchWorkload(batch_config);
    }

    state.counters["qps"] = static_cast<double>(num_queries) /
                            (batched.wall_s > 0.0 ? batched.wall_s : 1e-9);
    state.counters["p50_ms"] = batched.lat.p50_ms;
    state.counters["p99_ms"] = batched.lat.p99_ms;
    state.counters["batch_speedup"] =
        batched.wall_s > 0.0 ? solo.wall_s / batched.wall_s : 1.0;
    state.counters["decode_amortization"] =
        batched.expanded > 0
            ? static_cast<double>(batched.expanded + batched.shared) /
                  static_cast<double>(batched.expanded)
            : 1.0;
    state.counters["dedup"] = static_cast<double>(batched.dedup);
  }
}

// Always-on telemetry cost (docs/OBSERVABILITY.md "Continuous
// telemetry"): the same saturated solo top-k workload through a service
// with the hub disabled and with the shipped default config (sampling at
// 1/1024, rolling windows, slow classification), timed back-to-back in one
// process like BM_TraceOverhead. `sampling_overhead` (enabled time /
// disabled time) is a machine-relative ratio the regression checker caps
// hard (--max-sampling-overhead): the pipeline must stay affordable
// enough to leave on in production. Cache off so every request takes the
// fully instrumented execution path.
double RunTelemetryLeg(bool enabled, int reps) {
  WhyNotEngine& engine = SharedEngine();
  const MixedWorkload& workload = SharedWorkload();
  QueryServiceConfig config;
  config.num_workers = 4;
  config.max_queue = 0;
  config.max_inflight = 0;
  config.cache_capacity = 0;
  config.telemetry.enabled = enabled;
  QueryService service(&engine, config);
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> tf;
  tf.reserve(workload.topk.size());
  Timer wall;
  for (int rep = 0; rep < reps; ++rep) {
    tf.clear();
    for (const SpatialKeywordQuery& q : workload.topk) {
      tf.push_back(service.SubmitTopK(q));
    }
    for (auto& f : tf) {
      const auto r = f.get();
      WSK_CHECK_MSG(r.ok(), "%s", r.status().ToString().c_str());
    }
  }
  return wall.ElapsedSeconds();
}

void BM_SamplingOverhead(benchmark::State& state) {
  const size_t num_queries = SharedWorkload().topk.size();
  double off_s = 0.0;
  double on_s = 0.0;
  int reps = 1;
  for (auto _ : state) {
    // Calibrate the leg length so each timed leg runs long enough (at the
    // CI scale a single pass is ~20 ms) that scheduler jitter stays well
    // under the 5% overhead budget the checker enforces.
    const double once_s = RunTelemetryLeg(false, 1);
    if (once_s > 0.0) {
      reps = static_cast<int>(0.15 / once_s) + 1;
      reps = std::min(reps, 64);
    }
    // Warm both paths (page cache, node cache, allocator), then alternate
    // legs and keep each side's best so scheduler noise cannot manufacture
    // an overhead that is not there.
    (void)RunTelemetryLeg(true, reps);
    off_s = RunTelemetryLeg(false, reps);
    on_s = RunTelemetryLeg(true, reps);
    for (int round = 0; round < 3; ++round) {
      off_s = std::min(off_s, RunTelemetryLeg(false, reps));
      on_s = std::min(on_s, RunTelemetryLeg(true, reps));
    }
  }
  state.counters["disabled_ms"] = off_s * 1e3;
  state.counters["enabled_ms"] = on_s * 1e3;
  state.counters["sampling_overhead"] = off_s > 0.0 ? on_s / off_s : 1.0;
  state.counters["qps"] = static_cast<double>(num_queries * reps) /
                          (on_s > 0.0 ? on_s : 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  for (int workers : {1, 2, 4, 8}) {
    const std::string name = "service/mixed/workers:" + std::to_string(workers);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [workers](benchmark::State& state) { RunService(state, workers); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (bool merge : {true, false}) {
    const std::string name =
        std::string("service/ingest/merge:") + (merge ? "on" : "off");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [merge](benchmark::State& state) { RunIngest(state, merge); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    const std::string name = "service/shards/n:" + std::to_string(shards);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [shards](benchmark::State& state) { RunShards(state, shards); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (size_t n : {1u, 4u, 8u, 16u}) {
    const std::string name = "service/batch/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(
        name.c_str(), [n](benchmark::State& state) { RunBatch(state, n); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("service/telemetry/sampling",
                               BM_SamplingOverhead)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  return RunRegisteredBenchmarks(argc, argv);
}
