// Shared harness for the experiment benchmarks (Section VII).
//
// Each bench binary reproduces one figure of the paper: it sweeps one
// parameter of Table III, runs a fixed workload of why-not queries per
// (algorithm, value) pair, and reports the paper's two metrics — average
// query time (ms) and average I/O (physical page reads) — plus the average
// penalty where the figure reports it.
//
// Dataset scale is environment-tunable so the suite finishes in CI-sized
// containers while preserving the paper's *shape*:
//   WSK_BENCH_OBJECTS    objects in the EURO-like dataset (default 20000)
//   WSK_BENCH_VOCAB      vocabulary size              (default objects/5)
//   WSK_BENCH_QUERIES    why-not queries per data point (default 3)
//   WSK_BENCH_BUFFER_KB  buffer pool per index, KiB   (default 512 — the
//                        paper's 4 MiB : index-size ratio at bench scale)
#ifndef WSK_BENCH_BENCH_COMMON_H_
#define WSK_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"

namespace wsk::bench {

// Table III defaults: k0=10, 4 query keywords, alpha=0.5, missing object at
// rank 5*k0+1 = 51, lambda=0.5, 1 missing object.
struct WorkloadSpec {
  uint32_t k0 = 10;
  uint32_t num_keywords = 4;
  double alpha = 0.5;
  uint32_t missing_position = 51;  // stream position of the missing object
  uint32_t num_missing = 1;
  // Reject generated cases whose candidate universe |doc0 ∪ M.doc| exceeds
  // this cap; keeps the exponential BS baseline finishable at bench scale.
  uint32_t max_universe = 14;
  // When > 0, multi-missing draws only consider objects with at most this
  // many keywords (otherwise |M.doc| blows the universe cap immediately).
  uint32_t max_missing_doc = 0;
  uint64_t seed = 4242;
};

struct WhyNotCase {
  SpatialKeywordQuery query;
  std::vector<ObjectId> missing;
};

struct DatasetSpec {
  uint32_t objects = 0;  // 0 = use WSK_BENCH_OBJECTS
  uint32_t vocab = 0;    // 0 = derived from objects
  uint64_t seed = 20160516;
};

// Environment knobs.
uint32_t EnvObjects();
uint32_t EnvQueriesPerPoint();

// The shared EURO-like engine (built once per process; Table II header is
// printed on first use).
WhyNotEngine& SharedEngine();

// Engine for an explicit dataset size (Fig. 13 scalability); cached.
WhyNotEngine& EngineFor(const DatasetSpec& spec);

// Generates `count` why-not cases for the spec against the given engine.
std::vector<WhyNotCase> MakeCases(const WhyNotEngine& engine,
                                  const WorkloadSpec& spec, uint32_t count);

// Runs the workload under `state` (expects Iterations(1)); sets counters
// avg_ms, avg_io, avg_penalty and, for diagnostics, cand_eval.
void RunWhyNot(benchmark::State& state, WhyNotEngine& engine,
               WhyNotAlgorithm algorithm, const WorkloadSpec& spec,
               const WhyNotOptions& options);

// Registers the standard three-algorithm comparison for one sweep value.
// `label` example: "k0=10".
void RegisterAllAlgorithms(const std::string& label, const WorkloadSpec& spec,
                           const WhyNotOptions& options);

// Registers a single (algorithm, label) data point.
void RegisterOne(const std::string& label, WhyNotAlgorithm algorithm,
                 const WorkloadSpec& spec, const WhyNotOptions& options);

// Standard bench main body: initialize, run, shut down.
//
// Recognizes `--json <path>` / `--json=<path>` (stripped before the flags
// reach Google Benchmark): on top of the normal console output, writes a
// machine-readable summary of every run — name, iterations, ns/op, and all
// user counters (avg_ms, avg_io, avg_penalty, cand_eval, speedup, ...) —
// plus the dataset-scale context (WSK_BENCH_OBJECTS / WSK_BENCH_QUERIES),
// for tools/check_bench_regression.py.
int RunRegisteredBenchmarks(int argc, char** argv);

}  // namespace wsk::bench

#endif  // WSK_BENCH_BENCH_COMMON_H_
