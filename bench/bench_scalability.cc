// Fig. 13 — scalability: top-10 why-not queries over GN-like datasets of
// growing cardinality. Each size gets its own disk-resident index pair;
// index construction happens outside the measured region. Sizes scale from
// WSK_BENCH_OBJECTS (n/4, n/2, n, 2n).
#include "bench_common.h"

int main(int argc, char** argv) {
  using wsk::WhyNotAlgorithm;
  using wsk::WhyNotOptions;
  using namespace wsk::bench;

  const uint32_t base = EnvObjects();
  for (uint32_t objects : {base / 4, base / 2, base, base * 2}) {
    DatasetSpec dataset;
    dataset.objects = objects;
    dataset.seed = 19900101;  // the GN-like family
    WorkloadSpec spec;
    spec.seed = 13000 + objects;
    WhyNotOptions options;
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
          WhyNotAlgorithm::kKcrBased}) {
      const std::string name = std::string(WhyNotAlgorithmName(algorithm)) +
                               "/objects=" + std::to_string(objects);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algorithm, dataset, spec, options](benchmark::State& state) {
            RunWhyNot(state, EngineFor(dataset), algorithm, spec, options);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return RunRegisteredBenchmarks(argc, argv);
}
