// wsk_cli — command-line front end for the library.
//
// Subcommands:
//   generate  --out FILE [--objects N] [--vocab V] [--seed S] [--gn]
//       Write a synthetic EURO-like (or GN-like) dataset as CSV.
//   topk      --data FILE --x X --y Y --keywords "a b c" [--k K] [--alpha A]
//       Run a spatial keyword top-k query.
//   whynot    --data FILE --x X --y Y --keywords "a b c" --missing ID
//             [--missing ID ...] [--k K] [--alpha A] [--lambda L]
//             [--algorithm bs|advanced|kcr] [--threads T] [--sample T]
//       Answer a keyword-adaption why-not query.
//   explain   --data FILE --x X --y Y --keywords "a b c" --missing ID
//             [--k K] [--alpha A]
//       Explain why an object is (not) in the result.
//
// Example:
//   wsk_cli generate --out /tmp/pois.csv --objects 5000
//   wsk_cli topk --data /tmp/pois.csv --x 0.5 --y 0.5 --keywords "term1 term7"
//   wsk_cli whynot --data /tmp/pois.csv --x 0.5 --y 0.5 \
//       --keywords "term1 term7" --missing 1234 --algorithm kcr
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/explain.h"
#include "data/dataset_io.h"
#include "data/generator.h"

namespace {

using namespace wsk;

// Minimal flag parsing: --name value pairs; repeated flags accumulate.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
        values_[argv[i] + 2].push_back(argv[i + 1]);
        ++i;
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2].push_back("");
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }

  const char* Get(const std::string& name,
                  const char* fallback = nullptr) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second.back().c_str();
  }

  std::vector<std::string> GetAll(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  double GetDouble(const std::string& name, double fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::strtod(v, nullptr);
  }

  long GetLong(const std::string& name, long fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::strtol(v, nullptr, 10);
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage: wsk_cli <generate|topk|whynot|explain> [--flags]\n"
               "see the header of tools/wsk_cli.cc for details\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const Args& args) {
  const char* out = args.Get("out");
  if (out == nullptr) {
    std::fprintf(stderr, "generate requires --out FILE\n");
    return 2;
  }
  GeneratorConfig config = args.Has("gn")
                               ? GnLikeConfig(0.01)
                               : EuroLikeConfig(0.05);
  config.num_objects =
      static_cast<uint32_t>(args.GetLong("objects", config.num_objects));
  config.vocab_size =
      static_cast<uint32_t>(args.GetLong("vocab", config.vocab_size));
  config.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const Dataset dataset = GenerateDataset(config);
  const Status saved = SaveDatasetCsv(dataset, out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %zu objects (%u distinct terms) to %s\n", dataset.size(),
              dataset.vocabulary().num_terms(), out);
  return 0;
}

// Loads the dataset and parses the query flags shared by topk / whynot /
// explain. Returns nullptr on error (after printing it).
std::unique_ptr<Dataset> LoadData(const Args& args) {
  const char* path = args.Get("data");
  if (path == nullptr) {
    std::fprintf(stderr, "missing --data FILE\n");
    return nullptr;
  }
  auto loaded = LoadDatasetCsv(path);
  if (!loaded.ok()) {
    Fail(loaded.status());
    return nullptr;
  }
  return std::make_unique<Dataset>(std::move(loaded).value());
}

bool ParseQuery(const Args& args, const Dataset& dataset,
                SpatialKeywordQuery* query) {
  query->loc = Point{args.GetDouble("x", 0.5), args.GetDouble("y", 0.5)};
  query->k = static_cast<uint32_t>(args.GetLong("k", 10));
  query->alpha = args.GetDouble("alpha", 0.5);
  const char* keywords = args.Get("keywords");
  if (keywords == nullptr) {
    std::fprintf(stderr, "missing --keywords \"a b c\"\n");
    return false;
  }
  std::istringstream words(keywords);
  std::string word;
  std::vector<TermId> terms;
  while (words >> word) {
    const TermId t = dataset.vocabulary().Find(word);
    if (t == Vocabulary::kInvalidTermId) {
      std::fprintf(stderr, "warning: keyword \"%s\" not in the dataset\n",
                   word.c_str());
      continue;
    }
    terms.push_back(t);
  }
  if (terms.empty()) {
    std::fprintf(stderr, "no usable query keywords\n");
    return false;
  }
  query->doc = KeywordSet(std::move(terms));
  return true;
}

std::string FormatDoc(const Dataset& dataset, const KeywordSet& doc) {
  std::string out = "{";
  bool first = true;
  for (TermId t : doc) {
    if (!first) out += ", ";
    out += dataset.vocabulary().TermString(t);
    first = false;
  }
  out += "}";
  return out;
}

int TopK(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  auto top_or = engine->TopK(query);
  if (!top_or.ok()) return Fail(top_or.status());
  const std::vector<ScoredObject> top = std::move(top_or).value();
  std::printf("top-%u for %s at (%g, %g):\n", query.k,
              FormatDoc(*dataset, query.doc).c_str(), query.loc.x,
              query.loc.y);
  for (size_t i = 0; i < top.size(); ++i) {
    const SpatialObject& o = dataset->object(top[i].id);
    std::printf("%3zu. object %-8u score %.4f  at (%.4f, %.4f)  %s\n", i + 1,
                top[i].id, top[i].score, o.loc.x, o.loc.y,
                FormatDoc(*dataset, o.doc).c_str());
  }
  return 0;
}

int WhyNot(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;

  std::vector<ObjectId> missing;
  for (const std::string& v : args.GetAll("missing")) {
    missing.push_back(
        static_cast<ObjectId>(std::strtoul(v.c_str(), nullptr, 10)));
  }
  if (missing.empty()) {
    std::fprintf(stderr, "whynot requires at least one --missing ID\n");
    return 2;
  }

  WhyNotAlgorithm algorithm = WhyNotAlgorithm::kKcrBased;
  const std::string algo_name = args.Get("algorithm", "kcr");
  if (algo_name == "bs") {
    algorithm = WhyNotAlgorithm::kBasic;
  } else if (algo_name == "advanced") {
    algorithm = WhyNotAlgorithm::kAdvanced;
  } else if (algo_name != "kcr") {
    std::fprintf(stderr, "unknown --algorithm %s (bs|advanced|kcr)\n",
                 algo_name.c_str());
    return 2;
  }

  WhyNotOptions options;
  options.lambda = args.GetDouble("lambda", 0.5);
  options.num_threads = static_cast<int>(args.GetLong("threads", 0));
  options.sample_size = static_cast<uint32_t>(args.GetLong("sample", 0));

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  auto result_or = engine->Answer(algorithm, query, missing, options);
  if (!result_or.ok()) return Fail(result_or.status());
  const WhyNotResult& result = result_or.value();

  if (result.already_in_result) {
    std::printf("every \"missing\" object already ranks within the top-%u\n",
                query.k);
    return 0;
  }
  std::printf("algorithm:      %s\n", WhyNotAlgorithmName(algorithm));
  std::printf("initial R(M,q): %u (k0 = %u)\n", result.stats.initial_rank,
              query.k);
  std::printf("refined doc':   %s\n",
              FormatDoc(*dataset, result.refined.doc).c_str());
  std::printf("refined k':     %u\n", result.refined.k);
  std::printf("penalty:        %.4f (lambda %.2f)\n", result.refined.penalty,
              options.lambda);
  std::printf("cost:           %.2f ms, %llu page reads, %llu of %llu "
              "candidates evaluated\n",
              result.stats.elapsed_ms,
              static_cast<unsigned long long>(result.stats.io_reads),
              static_cast<unsigned long long>(
                  result.stats.candidates_evaluated),
              static_cast<unsigned long long>(result.stats.candidates_total));
  return 0;
}

int Explain(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;
  const char* missing = args.Get("missing");
  if (missing == nullptr) {
    std::fprintf(stderr, "explain requires --missing ID\n");
    return 2;
  }
  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();
  auto explanation = ExplainMiss(
      *engine, query,
      static_cast<ObjectId>(std::strtoul(missing, nullptr, 10)));
  if (!explanation.ok()) return Fail(explanation.status());
  std::printf("%s\n", explanation.value().ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc - 2, argv + 2);
  if (!args.ok()) return Usage();
  if (command == "generate") return Generate(args);
  if (command == "topk") return TopK(args);
  if (command == "whynot") return WhyNot(args);
  if (command == "explain") return Explain(args);
  return Usage();
}
