// wsk_cli — command-line front end for the library.
//
// Subcommands:
//   generate  --out FILE [--objects N] [--vocab V] [--seed S] [--gn]
//       Write a synthetic EURO-like (or GN-like) dataset as CSV.
//   topk      --data FILE --x X --y Y --keywords "a b c" [--k K] [--alpha A]
//       Run a spatial keyword top-k query.
//   whynot    --data FILE --x X --y Y --keywords "a b c" --missing ID
//             [--missing ID ...] [--k K] [--alpha A] [--lambda L]
//             [--algorithm bs|advanced|kcr] [--threads T] [--sample T]
//       Answer a keyword-adaption why-not query.
//   explain   --data FILE --x X --y Y --keywords "a b c" --missing ID
//             [--k K] [--alpha A]
//       Explain why an object is (not) in the result.
//   trace     --data FILE --x X --y Y --keywords "a b c" --missing ID
//             [--missing ID ...] [--k K] [--alpha A] [--lambda L]
//             [--algorithm bs|advanced|kcr] [--threads T] [--out FILE]
//       Run a why-not query with tracing enabled, write a Chrome
//       trace-event JSON profile (load it at https://ui.perfetto.dev),
//       explain each missing object into the trace, and print the
//       per-stage/per-counter summary (docs/OBSERVABILITY.md).
//   statsz    --data FILE (--queries FILE | --random N) [--workers W]
//             [--queue Q] [--inflight I] [--timeout-ms T] [--cache N]
//             [--batch N] [--batch-window-ms MS] [--repeat R] [--seed S]
//             [--top [--frames N] [--interval-ms MS]]
//             [--live [--mutations M] [--delta CAP]]
//       Replay a workload through the QueryService and print the
//       Prometheus text exposition of its metrics registry. --top
//       switches to a refreshing dashboard: the workload replays once
//       per frame and each frame prints the 1s/10s/60s rolling-window
//       rates, latency quantiles, and background-compaction counters
//       instead of the full exposition. --live serves the segmented
//       backend and streams M random inserts per frame so rotations and
//       merges run (and the wsk_bg_* counters move) while windows fill.
//   profiles  --data FILE (--queries FILE | --random N) [--sample-every N]
//             [--reservoir N] [--dump FILE] [service flags]
//       Replay the workload with profile sampling forced on (default:
//       every request) and list the retained sampled profiles — one
//       line each with wall/queue/stage times and event counts. --dump
//       writes the most recent profile as Chrome trace-event JSON
//       (load it at https://ui.perfetto.dev).
//   serve     --data FILE (--queries FILE | --random N) [--workers W]
//             [--queue Q] [--inflight I] [--timeout-ms T] [--cache N]
//             [--batch N] [--batch-window-ms MS] [--repeat R] [--seed S]
//             [--shards N]
//       Replay a query workload through the concurrent QueryService and
//       print per-status counts, throughput, and the metrics report.
//       --shards N > 1 partitions the dataset into N spatial tiles served
//       by the scatter-gather ShardCoordinator with cross-shard bound
//       pruning (docs/SHARDING.md); the report gains shard counters.
//       --batch N > 1 groups concurrent top-k requests behind a short
//       collection window (--batch-window-ms, default 0.25) and answers
//       each batch with one shared index traversal (docs/BATCHING.md);
//       the report gains batch occupancy / amortization counters.
//   inspect   (--data FILE [--format v1|v2] [--capacity N] [--mmap]
//              | --index FILE [--mmap])
//       Print layout facts of the index files: node format version,
//       height, object/node counts, file size, and a per-level
//       node/entry/byte histogram (docs/STORAGE.md "v2 node format &
//       mmap"). --data builds both trees from a CSV dataset; --index
//       opens one existing finalized index file (the tree kind is
//       detected from the meta page magic).
//   live      --data FILE (--queries FILE | --random N) [--mutations M]
//             [--delta CAP] [--no-merge] [--workers W] [--cache N]
//             [--seed S]
//       Serve the workload on the live (segmented) backend while
//       streaming M random insert/update/delete mutations through the
//       service, force a final compaction, and print the mutation
//       counts, dataset version, and segment counters
//       (docs/SEGMENTS.md).
//       Query file lines:
//         topk <x> <y> <k> <alpha> <keywords...>
//         whynot <bs|advanced|kcr> <x> <y> <k> <alpha> <lambda> \
//                <missing-id[,id...]> <keywords...>
//       Blank lines and lines starting with '#' are skipped.
//
// Service subcommands (statsz/serve/live/profiles) share the continuous-
// telemetry flags (docs/OBSERVABILITY.md "Continuous telemetry"):
//   --sample-every N   profile every Nth request (default 1024)
//   --slow-min-ms MS   slow-query capture floor (default 50)
//   --slow-factor F    slow threshold = max(floor, F * rolling p99)
//   --slow-log FILE    append each slow query as one JSON line
//   --no-telemetry     disable the hub entirely (overhead measurement)
//
// Example:
//   wsk_cli generate --out /tmp/pois.csv --objects 5000
//   wsk_cli topk --data /tmp/pois.csv --x 0.5 --y 0.5 --keywords "term1 term7"
//   wsk_cli whynot --data /tmp/pois.csv --x 0.5 --y 0.5 \
//       --keywords "term1 term7" --missing 1234 --algorithm kcr
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/engine.h"
#include "core/explain.h"
#include "data/dataset_io.h"
#include "data/generator.h"
#include "observability/trace.h"
#include "segment/segmented_engine.h"
#include "service/query_service.h"
#include "shard/shard_coordinator.h"

namespace {

using namespace wsk;

// Minimal flag parsing: --name value pairs; repeated flags accumulate.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      // A flag followed by another flag is boolean (--live --top ...);
      // only a non-flag token becomes its value.
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[argv[i] + 2].push_back(argv[i + 1]);
        ++i;
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2].push_back("");
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }

  const char* Get(const std::string& name,
                  const char* fallback = nullptr) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second.back().c_str();
  }

  std::vector<std::string> GetAll(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  double GetDouble(const std::string& name, double fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::strtod(v, nullptr);
  }

  long GetLong(const std::string& name, long fallback) const {
    const char* v = Get(name);
    return v == nullptr ? fallback : std::strtol(v, nullptr, 10);
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: wsk_cli "
      "<generate|topk|whynot|explain|trace|statsz|serve|live|inspect"
      "|profiles> [--flags]\n"
      "see the header of tools/wsk_cli.cc for details\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const Args& args) {
  const char* out = args.Get("out");
  if (out == nullptr) {
    std::fprintf(stderr, "generate requires --out FILE\n");
    return 2;
  }
  GeneratorConfig config = args.Has("gn")
                               ? GnLikeConfig(0.01)
                               : EuroLikeConfig(0.05);
  config.num_objects =
      static_cast<uint32_t>(args.GetLong("objects", config.num_objects));
  config.vocab_size =
      static_cast<uint32_t>(args.GetLong("vocab", config.vocab_size));
  config.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  const Dataset dataset = GenerateDataset(config);
  const Status saved = SaveDatasetCsv(dataset, out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %zu objects (%u distinct terms) to %s\n", dataset.size(),
              dataset.vocabulary().num_terms(), out);
  return 0;
}

// Loads the dataset and parses the query flags shared by topk / whynot /
// explain. Returns nullptr on error (after printing it).
std::unique_ptr<Dataset> LoadData(const Args& args) {
  const char* path = args.Get("data");
  if (path == nullptr) {
    std::fprintf(stderr, "missing --data FILE\n");
    return nullptr;
  }
  auto loaded = LoadDatasetCsv(path);
  if (!loaded.ok()) {
    Fail(loaded.status());
    return nullptr;
  }
  return std::make_unique<Dataset>(std::move(loaded).value());
}

bool ParseQuery(const Args& args, const Dataset& dataset,
                SpatialKeywordQuery* query) {
  query->loc = Point{args.GetDouble("x", 0.5), args.GetDouble("y", 0.5)};
  query->k = static_cast<uint32_t>(args.GetLong("k", 10));
  query->alpha = args.GetDouble("alpha", 0.5);
  const char* keywords = args.Get("keywords");
  if (keywords == nullptr) {
    std::fprintf(stderr, "missing --keywords \"a b c\"\n");
    return false;
  }
  std::istringstream words(keywords);
  std::string word;
  std::vector<TermId> terms;
  while (words >> word) {
    const TermId t = dataset.vocabulary().Find(word);
    if (t == Vocabulary::kInvalidTermId) {
      std::fprintf(stderr, "warning: keyword \"%s\" not in the dataset\n",
                   word.c_str());
      continue;
    }
    terms.push_back(t);
  }
  if (terms.empty()) {
    std::fprintf(stderr, "no usable query keywords\n");
    return false;
  }
  query->doc = KeywordSet(std::move(terms));
  return true;
}

std::string FormatDoc(const Dataset& dataset, const KeywordSet& doc) {
  std::string out = "{";
  bool first = true;
  for (TermId t : doc) {
    if (!first) out += ", ";
    out += dataset.vocabulary().TermString(t);
    first = false;
  }
  out += "}";
  return out;
}

int TopK(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  auto top_or = engine->TopK(query);
  if (!top_or.ok()) return Fail(top_or.status());
  const std::vector<ScoredObject> top = std::move(top_or).value();
  std::printf("top-%u for %s at (%g, %g):\n", query.k,
              FormatDoc(*dataset, query.doc).c_str(), query.loc.x,
              query.loc.y);
  for (size_t i = 0; i < top.size(); ++i) {
    const SpatialObject& o = dataset->object(top[i].id);
    std::printf("%3zu. object %-8u score %.4f  at (%.4f, %.4f)  %s\n", i + 1,
                top[i].id, top[i].score, o.loc.x, o.loc.y,
                FormatDoc(*dataset, o.doc).c_str());
  }
  return 0;
}

int WhyNot(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;

  std::vector<ObjectId> missing;
  for (const std::string& v : args.GetAll("missing")) {
    missing.push_back(
        static_cast<ObjectId>(std::strtoul(v.c_str(), nullptr, 10)));
  }
  if (missing.empty()) {
    std::fprintf(stderr, "whynot requires at least one --missing ID\n");
    return 2;
  }

  WhyNotAlgorithm algorithm = WhyNotAlgorithm::kKcrBased;
  const std::string algo_name = args.Get("algorithm", "kcr");
  if (algo_name == "bs") {
    algorithm = WhyNotAlgorithm::kBasic;
  } else if (algo_name == "advanced") {
    algorithm = WhyNotAlgorithm::kAdvanced;
  } else if (algo_name != "kcr") {
    std::fprintf(stderr, "unknown --algorithm %s (bs|advanced|kcr)\n",
                 algo_name.c_str());
    return 2;
  }

  WhyNotOptions options;
  options.lambda = args.GetDouble("lambda", 0.5);
  options.num_threads = static_cast<int>(args.GetLong("threads", 0));
  options.sample_size = static_cast<uint32_t>(args.GetLong("sample", 0));

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  auto result_or = engine->Answer(algorithm, query, missing, options);
  if (!result_or.ok()) return Fail(result_or.status());
  const WhyNotResult& result = result_or.value();

  if (result.already_in_result) {
    std::printf("every \"missing\" object already ranks within the top-%u\n",
                query.k);
    return 0;
  }
  std::printf("algorithm:      %s\n", WhyNotAlgorithmName(algorithm));
  std::printf("initial R(M,q): %u (k0 = %u)\n", result.stats.initial_rank,
              query.k);
  std::printf("refined doc':   %s\n",
              FormatDoc(*dataset, result.refined.doc).c_str());
  std::printf("refined k':     %u\n", result.refined.k);
  std::printf("penalty:        %.4f (lambda %.2f)\n", result.refined.penalty,
              options.lambda);
  std::printf("cost:           %.2f ms, %llu page reads, %llu of %llu "
              "candidates evaluated\n",
              result.stats.elapsed_ms,
              static_cast<unsigned long long>(result.stats.io_reads),
              static_cast<unsigned long long>(
                  result.stats.candidates_evaluated),
              static_cast<unsigned long long>(result.stats.candidates_total));
  return 0;
}

int Explain(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;
  const char* missing = args.Get("missing");
  if (missing == nullptr) {
    std::fprintf(stderr, "explain requires --missing ID\n");
    return 2;
  }
  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();
  auto explanation = ExplainMiss(
      *engine, query,
      static_cast<ObjectId>(std::strtoul(missing, nullptr, 10)));
  if (!explanation.ok()) return Fail(explanation.status());
  std::printf("%s\n", explanation.value().ToString().c_str());
  return 0;
}

bool ParseAlgorithmName(const std::string& name, WhyNotAlgorithm* algorithm) {
  if (name == "bs") {
    *algorithm = WhyNotAlgorithm::kBasic;
  } else if (name == "advanced") {
    *algorithm = WhyNotAlgorithm::kAdvanced;
  } else if (name == "kcr") {
    *algorithm = WhyNotAlgorithm::kKcrBased;
  } else {
    return false;
  }
  return true;
}

int Trace(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  SpatialKeywordQuery query;
  if (!ParseQuery(args, *dataset, &query)) return 2;

  std::vector<ObjectId> missing;
  for (const std::string& v : args.GetAll("missing")) {
    missing.push_back(
        static_cast<ObjectId>(std::strtoul(v.c_str(), nullptr, 10)));
  }
  if (missing.empty()) {
    std::fprintf(stderr, "trace requires at least one --missing ID\n");
    return 2;
  }

  WhyNotAlgorithm algorithm = WhyNotAlgorithm::kKcrBased;
  if (!ParseAlgorithmName(args.Get("algorithm", "kcr"), &algorithm)) {
    std::fprintf(stderr, "unknown --algorithm %s (bs|advanced|kcr)\n",
                 args.Get("algorithm", "kcr"));
    return 2;
  }

  WhyNotOptions options;
  options.lambda = args.GetDouble("lambda", 0.5);
  options.num_threads = static_cast<int>(args.GetLong("threads", 0));
  options.sample_size = static_cast<uint32_t>(args.GetLong("sample", 0));
  TraceRecorder recorder;
  options.trace = &recorder;

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  auto result_or = engine->Answer(algorithm, query, missing, options);
  if (!result_or.ok()) return Fail(result_or.status());
  const WhyNotResult& result = result_or.value();

  // One annotation per missing object explaining its standing.
  for (ObjectId id : missing) {
    auto explanation = ExplainMiss(*engine, query, id, &recorder);
    if (!explanation.ok()) return Fail(explanation.status());
  }

  const char* out = args.Get("out", "trace.json");
  const Status written = recorder.WriteChromeTrace(out);
  if (!written.ok()) return Fail(written);

  std::printf("algorithm:    %s\n", WhyNotAlgorithmName(algorithm));
  std::printf("refined doc': %s, k' = %u (penalty %.4f)\n",
              FormatDoc(*dataset, result.refined.doc).c_str(),
              result.refined.k, result.refined.penalty);
  std::printf("trace:        %zu events (%llu dropped) -> %s\n",
              recorder.num_events(),
              static_cast<unsigned long long>(recorder.dropped_events()), out);
  std::printf("%s", recorder.Summary().c_str());
  return 0;
}

// One parsed workload request for the serve subcommand.
struct ServeRequest {
  bool is_whynot = false;
  SpatialKeywordQuery query;
  WhyNotAlgorithm algorithm = WhyNotAlgorithm::kKcrBased;
  std::vector<ObjectId> missing;
  WhyNotOptions options;
};

// Resolves whitespace-separated keyword strings (the rest of `line_in`)
// against the dataset vocabulary; unknown words are skipped.
KeywordSet ReadKeywords(std::istringstream* line_in, const Dataset& dataset) {
  std::vector<TermId> terms;
  std::string word;
  while (*line_in >> word) {
    const TermId t = dataset.vocabulary().Find(word);
    if (t != Vocabulary::kInvalidTermId) terms.push_back(t);
  }
  return KeywordSet(std::move(terms));
}

bool LoadQueryFile(const char* path, const Dataset& dataset,
                   std::vector<ServeRequest>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open query file %s\n", path);
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream line_in(line);
    std::string kind;
    line_in >> kind;
    ServeRequest req;
    if (kind == "topk") {
      line_in >> req.query.loc.x >> req.query.loc.y >> req.query.k >>
          req.query.alpha;
    } else if (kind == "whynot") {
      req.is_whynot = true;
      std::string algo, missing_csv;
      line_in >> algo >> req.query.loc.x >> req.query.loc.y >> req.query.k >>
          req.query.alpha >> req.options.lambda >> missing_csv;
      if (!ParseAlgorithmName(algo, &req.algorithm)) {
        std::fprintf(stderr, "%s:%d: unknown algorithm %s\n", path, line_no,
                     algo.c_str());
        return false;
      }
      std::istringstream ids(missing_csv);
      std::string id;
      while (std::getline(ids, id, ',')) {
        req.missing.push_back(
            static_cast<ObjectId>(std::strtoul(id.c_str(), nullptr, 10)));
      }
      if (req.missing.empty()) {
        std::fprintf(stderr, "%s:%d: whynot line without missing ids\n", path,
                     line_no);
        return false;
      }
    } else {
      std::fprintf(stderr, "%s:%d: unknown request kind %s\n", path, line_no,
                   kind.c_str());
      return false;
    }
    if (!line_in && !line_in.eof()) {
      std::fprintf(stderr, "%s:%d: malformed request line\n", path, line_no);
      return false;
    }
    req.query.doc = ReadKeywords(&line_in, dataset);
    if (req.query.doc.empty()) {
      std::fprintf(stderr, "%s:%d: no usable keywords\n", path, line_no);
      return false;
    }
    out->push_back(std::move(req));
  }
  return true;
}

// Synthesizes a mixed workload (~2/3 top-k, 1/3 why-not cycling through the
// three algorithms) anchored at real objects so queries hit data. Query
// docs are trimmed to 4 terms and missing objects drawn from small-doc
// objects to keep the candidate universe |doc0 ∪ M.doc| small — the BS
// baseline is exponential in it.
std::vector<ServeRequest> RandomWorkload(size_t count, const Dataset& dataset,
                                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> pick_object(0, dataset.size() - 1);
  std::uniform_real_distribution<double> jitter(-0.05, 0.05);
  const auto pick_small_doc = [&](size_t max_terms) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const ObjectId id = static_cast<ObjectId>(pick_object(rng));
      if (dataset.object(id).doc.size() <= max_terms) return id;
    }
    return static_cast<ObjectId>(pick_object(rng));
  };
  std::vector<ServeRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const SpatialObject& anchor = dataset.object(pick_small_doc(6));
    ServeRequest req;
    req.query.loc = Point{anchor.loc.x + jitter(rng), anchor.loc.y + jitter(rng)};
    req.query.k = 5;
    req.query.alpha = 0.5;
    std::vector<TermId> terms(anchor.doc.begin(), anchor.doc.end());
    if (terms.size() > 4) terms.resize(4);
    req.query.doc = KeywordSet(std::move(terms));
    if (i % 3 == 2) {
      req.is_whynot = true;
      const WhyNotAlgorithm algorithms[] = {WhyNotAlgorithm::kBasic,
                                            WhyNotAlgorithm::kAdvanced,
                                            WhyNotAlgorithm::kKcrBased};
      req.algorithm = algorithms[(i / 3) % 3];
      req.missing.push_back(pick_small_doc(3));
      req.options.lambda = 0.5;
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

// Builds the serve/statsz workload from --queries or --random. Returns
// false on a usage error (after printing it).
bool BuildWorkload(const Args& args, const Dataset& dataset, const char* cmd,
                   std::vector<ServeRequest>* requests) {
  if (const char* queries = args.Get("queries")) {
    if (!LoadQueryFile(queries, dataset, requests)) return false;
  } else if (args.Has("random")) {
    const long n = args.GetLong("random", 100);
    if (n <= 0) {
      std::fprintf(stderr, "--random requires a positive count\n");
      return false;
    }
    *requests =
        RandomWorkload(static_cast<size_t>(n), dataset,
                       static_cast<uint64_t>(args.GetLong("seed", 42)));
  } else {
    std::fprintf(stderr, "%s requires --queries FILE or --random N\n", cmd);
    return false;
  }
  if (requests->empty()) {
    std::fprintf(stderr, "empty workload\n");
    return false;
  }
  return true;
}

QueryServiceConfig ServiceConfigFromArgs(const Args& args) {
  QueryServiceConfig config;
  config.num_workers = static_cast<int>(args.GetLong("workers", 4));
  config.max_queue = static_cast<size_t>(args.GetLong("queue", 0));
  config.max_inflight = static_cast<size_t>(args.GetLong("inflight", 0));
  config.default_timeout_ms = args.GetDouble("timeout-ms", 0.0);
  config.cache_capacity = static_cast<size_t>(args.GetLong("cache", 1024));
  // --batch N > 1 collects concurrent top-k requests behind a short
  // window and runs each batch as one shared traversal (docs/BATCHING.md).
  config.batch_max_size = static_cast<size_t>(args.GetLong("batch", 1));
  config.batch_window_ms =
      args.GetDouble("batch-window-ms", config.batch_window_ms);
  // Continuous telemetry (docs/OBSERVABILITY.md): sampling rate, the
  // slow-query threshold knobs, and the optional JSONL sink.
  config.telemetry.enabled = !args.Has("no-telemetry");
  config.telemetry.sample_every = static_cast<uint64_t>(
      args.GetLong("sample-every",
                   static_cast<long>(config.telemetry.sample_every)));
  config.telemetry.slow_min_ms =
      args.GetDouble("slow-min-ms", config.telemetry.slow_min_ms);
  config.telemetry.slow_factor =
      args.GetDouble("slow-factor", config.telemetry.slow_factor);
  if (const char* slow_log = args.Get("slow-log"); slow_log != nullptr) {
    config.telemetry.slow_log_path = slow_log;
  }
  return config;
}

// Replays the workload once, blocking per request; true when every
// request succeeded.
bool ReplayWorkload(QueryService* service,
                    const std::vector<ServeRequest>& requests) {
  bool all_ok = true;
  for (const ServeRequest& req : requests) {
    if (req.is_whynot) {
      all_ok &=
          service->WhyNot(req.algorithm, req.query, req.missing, req.options)
              .ok();
    } else {
      all_ok &= service->TopK(req.query).ok();
    }
  }
  return all_ok;
}

int Serve(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;

  std::vector<ServeRequest> requests;
  if (!BuildWorkload(args, *dataset, "serve", &requests)) return 2;

  // --shards N > 1 serves through the scatter-gather coordinator (one
  // frozen engine per spatial tile, docs/SHARDING.md); the default is the
  // single frozen engine.
  const long num_shards = args.GetLong("shards", 1);
  std::unique_ptr<WhyNotEngine> engine;
  std::unique_ptr<ShardCoordinator> coordinator;
  const QueryBackend* backend = nullptr;
  if (num_shards > 1) {
    ShardCoordinator::Config config;
    config.num_shards = static_cast<uint32_t>(num_shards);
    auto coordinator_or = ShardCoordinator::Build(*dataset, config);
    if (!coordinator_or.ok()) return Fail(coordinator_or.status());
    coordinator = std::move(coordinator_or).value();
    backend = coordinator.get();
  } else {
    auto engine_or = WhyNotEngine::Build(dataset.get(), {});
    if (!engine_or.ok()) return Fail(engine_or.status());
    engine = std::move(engine_or).value();
    backend = engine.get();
  }

  QueryService service(backend, ServiceConfigFromArgs(args));

  const long repeat = args.GetLong("repeat", 1);
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> topk_futures;
  std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>>
      whynot_futures;
  Timer wall;
  for (long r = 0; r < repeat; ++r) {
    for (const ServeRequest& req : requests) {
      if (req.is_whynot) {
        whynot_futures.push_back(service.SubmitWhyNot(
            req.algorithm, req.query, req.missing, req.options));
      } else {
        topk_futures.push_back(service.SubmitTopK(req.query));
      }
    }
  }

  std::map<StatusCode, uint64_t> by_code;
  uint64_t cache_hits = 0;
  for (auto& f : topk_futures) {
    const StatusOr<QueryService::TopKResponse> r = f.get();
    ++by_code[r.status().code()];
    if (r.ok() && r.value().cache_hit) ++cache_hits;
  }
  for (auto& f : whynot_futures) {
    const StatusOr<QueryService::WhyNotResponse> r = f.get();
    ++by_code[r.status().code()];
    if (r.ok() && r.value().cache_hit) ++cache_hits;
  }
  const double wall_s = wall.ElapsedSeconds();

  const size_t total = topk_futures.size() + whynot_futures.size();
  std::printf("served %zu requests (%zu topk, %zu whynot) in %.3f s — "
              "throughput %.1f qps, %llu cache hits\n",
              total, topk_futures.size(), whynot_futures.size(), wall_s,
              total / (wall_s > 0.0 ? wall_s : 1e-9),
              static_cast<unsigned long long>(cache_hits));
  for (const auto& [code, count] : by_code) {
    std::printf("  %-20s %llu\n", StatusCodeName(code),
                static_cast<unsigned long long>(count));
  }
  std::printf("%s", service.MetricsReport().c_str());
  if (const TelemetryHub* hub = service.telemetry()) {
    for (const QueryProfile& p : hub->SlowQueries()) {
      std::printf("slow  %s\n", p.Summary().c_str());
    }
  }
  return by_code.size() == 1 && by_code.count(StatusCode::kOk) == 1 ? 0 : 1;
}

// Serves the workload on the live (segmented) backend while a stream of
// random mutations flows through the service, then forces a compaction.
// Demonstrates that queries keep answering — and the result cache never
// serves stale data — while the dataset changes underneath them.
int Live(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;

  std::vector<ServeRequest> requests;
  if (!BuildWorkload(args, *dataset, "live", &requests)) return 2;

  SegmentedEngine::Config engine_config;
  engine_config.delta_capacity =
      static_cast<uint32_t>(args.GetLong("delta", 4096));
  engine_config.auto_merge = !args.Has("no-merge");
  auto engine_or = SegmentedEngine::Build(*dataset, engine_config);
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  QueryService service(engine.get(), ServiceConfigFromArgs(args));

  // Mutation stream: keywords drawn from the seed vocabulary so mutated
  // objects interact with the workload's query terms.
  const Vocabulary& vocabulary = engine->vocabulary();
  std::vector<std::string> terms;
  for (TermId t = 0; t < std::min(vocabulary.num_terms(), 64u); ++t) {
    terms.push_back(vocabulary.TermString(t));
  }
  std::vector<ObjectId> live_ids(dataset->size());
  for (size_t i = 0; i < live_ids.size(); ++i) {
    live_ids[i] = static_cast<ObjectId>(i);
  }
  std::mt19937_64 rng(static_cast<uint64_t>(args.GetLong("seed", 42)));
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  const auto random_keywords = [&] {
    return std::vector<std::string>{terms[rng() % terms.size()],
                                    terms[rng() % terms.size()]};
  };

  const long mutations = args.GetLong("mutations", 200);
  uint64_t inserts = 0, updates = 0, deletes = 0;
  uint64_t version = engine->dataset_version();
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> topk_futures;
  std::vector<std::future<StatusOr<QueryService::WhyNotResponse>>>
      whynot_futures;
  size_t next_request = 0;
  Timer wall;
  for (long i = 0; i < mutations; ++i) {
    const uint64_t r = rng();
    StatusOr<QueryService::MutationResponse> response =
        Status::Internal("unset");
    if (r % 4 < 2 || live_ids.empty()) {
      response = service.Insert(Point{coord(rng), coord(rng)},
                                random_keywords());
      if (response.ok()) {
        live_ids.push_back(response.value().id);
        ++inserts;
      }
    } else {
      const size_t victim = r % live_ids.size();
      if (r % 4 == 2) {
        response = service.Update(live_ids[victim],
                                  Point{coord(rng), coord(rng)},
                                  random_keywords());
        if (response.ok()) ++updates;
      } else {
        response = service.Delete(live_ids[victim]);
        if (response.ok()) {
          live_ids[victim] = live_ids.back();
          live_ids.pop_back();
          ++deletes;
        }
      }
    }
    if (!response.ok()) return Fail(response.status());
    version = response.value().dataset_version;
    // A query every few mutations so reads race rotations and merges.
    if (i % 4 == 0) {
      const ServeRequest& req = requests[next_request++ % requests.size()];
      if (req.is_whynot) {
        whynot_futures.push_back(service.SubmitWhyNot(
            req.algorithm, req.query, req.missing, req.options));
      } else {
        topk_futures.push_back(service.SubmitTopK(req.query));
      }
    }
  }

  std::map<StatusCode, uint64_t> by_code;
  for (auto& f : topk_futures) ++by_code[f.get().status().code()];
  for (auto& f : whynot_futures) ++by_code[f.get().status().code()];
  const double wall_s = wall.ElapsedSeconds();

  const Status merged = engine->ForceMerge();
  if (!merged.ok()) return Fail(merged);

  const size_t queries = topk_futures.size() + whynot_futures.size();
  std::printf("applied %llu inserts, %llu updates, %llu deletes and served "
              "%zu queries in %.3f s — dataset version %llu, %zu live "
              "objects\n",
              static_cast<unsigned long long>(inserts),
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(deletes), queries, wall_s,
              static_cast<unsigned long long>(version), live_ids.size());
  for (const auto& [code, count] : by_code) {
    std::printf("  %-20s %llu\n", StatusCodeName(code),
                static_cast<unsigned long long>(count));
  }
  std::printf("%s", service.MetricsReport().c_str());
  return by_code.empty() ||
                 (by_code.size() == 1 && by_code.count(StatusCode::kOk) == 1)
             ? 0
             : 1;
}

int Statsz(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;

  std::vector<ServeRequest> requests;
  if (!BuildWorkload(args, *dataset, "statsz", &requests)) return 2;

  // --live serves the segmented backend and streams random inserts so
  // rotations and merges run (moving the wsk_bg_* counters) while the
  // rolling windows fill; the default is the frozen engine.
  std::unique_ptr<WhyNotEngine> engine;
  std::unique_ptr<SegmentedEngine> segmented;
  const QueryBackend* backend = nullptr;
  if (args.Has("live")) {
    SegmentedEngine::Config config;
    // Small delta by default so the insert stream forces rotations.
    config.delta_capacity = static_cast<uint32_t>(args.GetLong("delta", 64));
    auto engine_or = SegmentedEngine::Build(*dataset, config);
    if (!engine_or.ok()) return Fail(engine_or.status());
    segmented = std::move(engine_or).value();
    backend = segmented.get();
  } else {
    auto engine_or = WhyNotEngine::Build(dataset.get(), {});
    if (!engine_or.ok()) return Fail(engine_or.status());
    engine = std::move(engine_or).value();
    backend = engine.get();
  }

  QueryService service(backend, ServiceConfigFromArgs(args));

  std::mt19937_64 rng(static_cast<uint64_t>(args.GetLong("seed", 42)));
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  const long mutations = args.GetLong("mutations", 200);
  const auto stream_mutations = [&]() -> Status {
    if (segmented == nullptr) return Status();
    const Vocabulary& vocab = segmented->vocabulary();
    const uint32_t pool = std::min(vocab.num_terms(), 64u);
    for (long i = 0; i < mutations; ++i) {
      const std::vector<std::string> keywords{
          vocab.TermString(static_cast<TermId>(rng() % pool)),
          vocab.TermString(static_cast<TermId>(rng() % pool))};
      const auto response =
          service.Insert(Point{coord(rng), coord(rng)}, keywords);
      if (!response.ok()) return response.status();
    }
    return Status();
  };

  const long repeat = args.GetLong("repeat", 1);
  bool all_ok = true;

  if (args.Has("top")) {
    // `top`-style refresh: one workload replay per frame, printing the
    // rolling-window dashboard instead of the full exposition.
    const TelemetryHub* hub = service.telemetry();
    if (hub == nullptr) {
      std::fprintf(stderr, "statsz --top requires telemetry enabled\n");
      return 2;
    }
    const long frames = std::max(1L, args.GetLong("frames", 3));
    const long interval_ms = args.GetLong("interval-ms", 200);
    for (long frame = 0; frame < frames; ++frame) {
      if (Status streamed = stream_mutations(); !streamed.ok()) {
        return Fail(streamed);
      }
      for (long r = 0; r < repeat; ++r) {
        all_ok &= ReplayWorkload(&service, requests);
      }
      std::printf("-- frame %ld/%ld %.*s\n", frame + 1, frames, 44,
                  "--------------------------------------------");
      std::printf("%-8s %9s %9s %6s %6s %10s %10s\n", "window", "requests",
                  "qps", "shed", "hit", "p50_ms", "p99_ms");
      for (const uint64_t w : {uint64_t{1}, uint64_t{10}, uint64_t{60}}) {
        const RollingWindows::Snapshot s = hub->Window(w);
        char label[16];
        std::snprintf(label, sizeof(label), "%llus",
                      static_cast<unsigned long long>(w));
        std::printf("%-8s %9llu %9.1f %6.2f %6.2f %10.3f %10.3f\n", label,
                    static_cast<unsigned long long>(s.requests), s.qps,
                    s.shed_ratio, s.hit_ratio, s.p50_ms, s.p99_ms);
      }
      const TelemetryStats ts = hub->stats();
      std::printf("telemetry observed %llu sampled %llu slow %llu "
                  "threshold_ms %.3f\n",
                  static_cast<unsigned long long>(ts.requests_observed),
                  static_cast<unsigned long long>(ts.profiles_sampled),
                  static_cast<unsigned long long>(ts.slow_queries),
                  ts.slow_threshold_ms);
      if (const SegmentCountersSnapshot seg = backend->segment_counters();
          seg.valid) {
        std::printf("bg       merges %llu busy_ms %.1f tombstones %llu "
                    "retired %llu\n",
                    static_cast<unsigned long long>(seg.merges),
                    static_cast<double>(seg.merge_busy_us) / 1000.0,
                    static_cast<unsigned long long>(seg.tombstones_replayed),
                    static_cast<unsigned long long>(seg.segments_retired));
      }
      if (frame + 1 < frames && interval_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    }
    return all_ok ? 0 : 1;
  }

  if (Status streamed = stream_mutations(); !streamed.ok()) {
    return Fail(streamed);
  }
  for (long r = 0; r < repeat; ++r) {
    all_ok &= ReplayWorkload(&service, requests);
  }
  std::printf("%s", service.PrometheusReport().c_str());
  return all_ok ? 0 : 1;
}

// profiles: replay the workload with sampling forced on (every request by
// default) and list the retained sampled profiles.
int Profiles(const Args& args) {
  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;

  std::vector<ServeRequest> requests;
  if (!BuildWorkload(args, *dataset, "profiles", &requests)) return 2;

  auto engine_or = WhyNotEngine::Build(dataset.get(), {});
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();

  QueryServiceConfig config = ServiceConfigFromArgs(args);
  config.telemetry.enabled = true;
  config.telemetry.sample_every =
      static_cast<uint64_t>(args.GetLong("sample-every", 1));
  config.telemetry.profile_reservoir =
      static_cast<size_t>(args.GetLong("reservoir", 32));
  QueryService service(engine.get(), config);

  const long repeat = args.GetLong("repeat", 1);
  bool all_ok = true;
  for (long r = 0; r < repeat; ++r) {
    all_ok &= ReplayWorkload(&service, requests);
  }

  const std::vector<QueryProfile> profiles = service.telemetry()->Profiles();
  const TelemetryStats stats = service.telemetry()->stats();
  std::printf("retained %zu of %llu sampled profiles "
              "(%llu requests observed)\n",
              profiles.size(),
              static_cast<unsigned long long>(stats.profiles_sampled),
              static_cast<unsigned long long>(stats.requests_observed));
  for (const QueryProfile& p : profiles) {
    std::printf("%s\n", p.Summary().c_str());
  }
  if (const char* dump = args.Get("dump"); dump != nullptr) {
    if (profiles.empty()) {
      std::fprintf(stderr, "no profile to dump\n");
      return 1;
    }
    const QueryProfile& last = profiles.back();
    std::ofstream out(dump);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", dump);
      return 1;
    }
    out << last.ToChromeTraceJson();
    std::printf("wrote profile #%llu (%zu events) to %s\n",
                static_cast<unsigned long long>(last.id), last.events.size(),
                dump);
  }
  return all_ok ? 0 : 1;
}

// Walks one tree breadth-first and prints the per-level layout histogram
// from StatNode (structure only, no payload materialization).
template <typename Tree>
int InspectTree(const char* label, const Tree& tree, const Pager& pager) {
  std::printf("%s: format v%u  height %u  objects %llu  capacity %u  "
              "file %llu pages (%llu bytes)%s\n",
              label, tree.options().format, tree.height(),
              static_cast<unsigned long long>(tree.num_objects()),
              tree.options().capacity,
              static_cast<unsigned long long>(pager.num_pages()),
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(pager.num_pages()) *
                  pager.page_size()),
              pager.mapped() ? "  [mmap]" : "");
  std::vector<PageId> frontier;
  if (tree.height() > 0) frontier.push_back(tree.SearchRoot());
  uint64_t total_nodes = 0;
  uint64_t total_bytes = 0;
  uint64_t total_pages = 0;
  for (uint32_t level = tree.height(); level >= 1 && !frontier.empty();
       --level) {
    uint64_t nodes = 0, entries = 0, bytes = 0, pages = 0;
    std::vector<PageId> next;
    for (PageId page : frontier) {
      const auto stat = tree.StatNode(page);
      if (!stat.ok()) return Fail(stat.status());
      ++nodes;
      entries += stat.value().entries;
      bytes += stat.value().record_bytes;
      pages += stat.value().record_pages;
      if (!stat.value().is_leaf) {
        const auto node = tree.ReadNode(page);
        if (!node.ok()) return Fail(node.status());
        for (const auto& e : node.value().inner_entries) {
          next.push_back(e.child);
        }
      }
    }
    const char* kind =
        level == 1 ? " (leaf)" : (level == tree.height() ? " (root)" : "");
    std::printf("  level %u%-7s %6llu nodes %8llu entries %12llu bytes "
                "%8llu pages\n",
                level, kind, static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(pages));
    total_nodes += nodes;
    total_bytes += bytes;
    total_pages += pages;
    frontier = std::move(next);
  }
  std::printf("  total          %6llu nodes %31llu bytes %8llu pages\n",
              static_cast<unsigned long long>(total_nodes),
              static_cast<unsigned long long>(total_bytes),
              static_cast<unsigned long long>(total_pages));
  return 0;
}

int Inspect(const Args& args) {
  const bool mmap_reads = args.Has("mmap");
  if (const char* index_path = args.Get("index"); index_path != nullptr) {
    auto pager_or = Pager::Open(index_path);
    if (!pager_or.ok()) return Fail(pager_or.status());
    auto pager = std::move(pager_or).value();
    // The meta page leads with the tree magic ("WKRS" / "WKRC" LE).
    std::vector<uint8_t> page0(pager->page_size());
    const Status head = pager->ReadPage(0, page0.data());
    if (!head.ok()) return Fail(head);
    uint32_t magic = 0;
    std::memcpy(&magic, page0.data(), sizeof(magic));
    if (mmap_reads) {
      const Status mapped = pager->EnableMappedReads();
      if (!mapped.ok()) return Fail(mapped);
    }
    BufferPool pool(pager.get(), 4u << 20);
    if (magic == 0x53524b57) {  // "WKRS": SetR-tree
      auto tree = SetRTree::Open(&pool);
      if (!tree.ok()) return Fail(tree.status());
      return InspectTree("setr", *tree.value(), *pager);
    }
    if (magic == 0x43524b57) {  // "WKRC": KcR-tree
      auto tree = KcrTree::Open(&pool);
      if (!tree.ok()) return Fail(tree.status());
      return InspectTree("kcr", *tree.value(), *pager);
    }
    std::fprintf(stderr, "%s: unrecognized index magic 0x%08x\n", index_path,
                 magic);
    return 1;
  }

  std::unique_ptr<Dataset> dataset = LoadData(args);
  if (dataset == nullptr) return 1;
  uint8_t format = kNodeFormatV2;
  if (const char* fmt = args.Get("format"); fmt != nullptr) {
    if (std::strcmp(fmt, "v1") == 0) {
      format = kNodeFormatV1;
    } else if (std::strcmp(fmt, "v2") == 0) {
      format = kNodeFormatV2;
    } else {
      std::fprintf(stderr, "--format must be v1 or v2\n");
      return 2;
    }
  }
  WhyNotEngine::Config config;
  config.node_capacity =
      static_cast<uint32_t>(args.GetLong("capacity", config.node_capacity));
  config.node_format = format;
  config.mmap_reads = mmap_reads;
  auto engine_or = WhyNotEngine::Build(dataset.get(), config);
  if (!engine_or.ok()) return Fail(engine_or.status());
  auto engine = std::move(engine_or).value();
  std::printf("dataset: %zu objects, %u terms\n", dataset->size(),
              dataset->vocabulary().num_terms());
  const int setr_rc =
      InspectTree("setr", engine->setr_tree(), engine->setr_pager());
  if (setr_rc != 0) return setr_rc;
  return InspectTree("kcr", engine->kcr_tree(), engine->kcr_pager());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc - 2, argv + 2);
  if (!args.ok()) return Usage();
  if (command == "generate") return Generate(args);
  if (command == "topk") return TopK(args);
  if (command == "whynot") return WhyNot(args);
  if (command == "explain") return Explain(args);
  if (command == "trace") return Trace(args);
  if (command == "statsz") return Statsz(args);
  if (command == "serve") return Serve(args);
  if (command == "live") return Live(args);
  if (command == "inspect") return Inspect(args);
  if (command == "profiles") return Profiles(args);
  return Usage();
}
