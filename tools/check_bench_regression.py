#!/usr/bin/env python3
"""Compares a --json benchmark run against the checked-in baseline.

Usage:
    build/bench/bench_kernels --json kernels.json
    build/bench/bench_optimizations --json opts.json
    build/bench/bench_index_micro --json micro.json
    tools/check_bench_regression.py BENCH_BASELINE.json \
        kernels.json opts.json micro.json

Several current files are merged by benchmark name before the comparison
(the baseline covers more than one bench binary).

Gating policy (docs/PERF.md):
  * Deterministic counters (avg_io, cand_eval) are hard-gated: the run FAILS
    when the current value exceeds baseline by more than --tolerance
    (default 25%). These depend only on algorithm + dataset seed, not on
    machine speed, so CI can gate on them reliably.
  * `speedup` counters (scalar time / kernel time, measured back-to-back in
    one process) are hard-gated on the absolute floor --min-speedup
    (default 3): the kernel must beat the scalar path by that factor on
    any machine. Drift relative to the baseline's ratio only warns — the
    exact ratio depends on the host's divide/popcount throughput.
  * `cache_speedup` counters (node access with the decoded-node cache off /
    on, measured back-to-back in one process) are gated the same way on
    --min-cache-speedup (default 2): repeated traversals must be at least
    2x faster with the cache (docs/STORAGE.md "Node cache").
  * `decode_speedup` counters (full-tree node decode timed v1-buffered vs
    v2-mapped, back-to-back in one process) are gated the same way on
    --min-decode-speedup (default 1.3): the compact v2 records served from
    the mapping must decode at least 1.3x faster than v1 through the
    buffer pool (docs/STORAGE.md "v2 node format & mmap").
  * `v2_size_ratio` counters (v2 file bytes / v1 file bytes for the same
    dataset) are hard-capped at --max-v2-size-ratio (default 0.75): the
    compact format must stay at least 25%% smaller. The ratio depends only
    on dataset + format, so it is also drift-gated like avg_io.
  * `trace_overhead` counters (same why-not workload timed with a
    full-capacity TraceRecorder attached / with options.trace = nullptr,
    back-to-back in one process) are hard-capped at --max-trace-overhead
    (default 1.5): enabling tracing may never cost more than 50% on any
    machine (docs/OBSERVABILITY.md). The cap applies to every
    trace_overhead counter in the *current* run, whether or not the
    baseline has the benchmark yet.
  * `sampling_overhead` counters (the same saturated service workload with
    the telemetry hub at its shipped defaults / disabled, back-to-back in
    one process) are hard-capped at --max-sampling-overhead (default
    1.05): always-on sampled profiling, rolling windows, and slow
    classification may never cost more than 5%% on any machine
    (docs/OBSERVABILITY.md "Continuous telemetry"). Like trace_overhead,
    the cap applies to every sampling_overhead counter in the *current*
    run, whether or not the baseline has the benchmark yet.
  * `shards_pruned` counters on the service/shards/n:N series are floored
    absolutely for every N > 1: the clustered workload must skip at least
    one shard over the run, whether or not the baseline has the series
    (docs/SHARDING.md).
  * The service/batch/n:N batched-execution series is floored absolutely
    for every N >= 8 on max(batch_speedup, decode_amortization) >=
    --min-batch-speedup (default 1.5): batching must either beat solo
    wall-clock by that factor or amortize the equivalent fraction of node
    decodes across the batch. decode_amortization ((expanded + shared) /
    expanded) depends only on workload + batch formation, not machine
    speed, which is what makes this an absolute gate; wall-clock
    batch_speedup can satisfy it too on multi-core hosts
    (docs/BATCHING.md).
  * Wall-clock metrics (ns_per_op, avg_ms, scalar_ns, kernel_ns) vary with
    the machine; they only WARN unless --strict-time is given.
  * A benchmark present in the baseline but missing from the current run
    FAILS (lost coverage); extra benchmarks in the current run are fine.
  * Mismatched dataset-scale context (objects / queries_per_point) FAILS
    unless --ignore-context: counters are only comparable at equal scale.

Refreshing the baseline after an intentional change: re-run the benches at
the scale documented in docs/PERF.md, overwrite BENCH_BASELINE.json, and
commit it together with the change. In CI the perf-smoke job is skipped for
pull requests carrying the `perf-baseline-override` label.

Exit status: 0 clean (warnings allowed), 1 on any failure.
"""

import argparse
import json
import sys

HARD_LOWER_IS_BETTER = ("avg_io", "cand_eval", "v2_size_ratio")
TIME_METRICS = (
    "ns_per_op",
    "avg_ms",
    "scalar_ns",
    "kernel_ns",
    "cache_on_ns",
    "cache_off_ns",
    "untraced_ms",
    "traced_ms",
    "disabled_ms",
    "enabled_ms",
    "v1_decode_ns",
    "v2_decode_ns",
    "v2_mmap_decode_ns",
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    benchmarks = {b["name"]: b for b in data.get("benchmarks", [])}
    return data.get("context", {}), benchmarks


def metric_values(bench):
    """Flattens one benchmark entry into {metric_name: value}."""
    values = {"ns_per_op": bench.get("ns_per_op")}
    values.update(bench.get("counters", {}))
    return {k: v for k, v in values.items() if isinstance(v, (int, float))}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative worsening vs baseline (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="absolute floor for every `speedup` counter (default 3)",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=2.0,
        help="absolute floor for every `cache_speedup` counter (default 2)",
    )
    parser.add_argument(
        "--min-decode-speedup",
        type=float,
        default=1.3,
        help="absolute floor for every `decode_speedup` counter (default 1.3)",
    )
    parser.add_argument(
        "--max-v2-size-ratio",
        type=float,
        default=0.75,
        help="absolute cap for every `v2_size_ratio` counter (default 0.75)",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=1.5,
        help="absolute cap for every `trace_overhead` counter (default 1.5)",
    )
    parser.add_argument(
        "--max-sampling-overhead",
        type=float,
        default=1.05,
        help="absolute cap for every `sampling_overhead` counter "
        "(default 1.05)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.5,
        help="absolute floor for max(batch_speedup, decode_amortization) "
        "on service/batch/n:N series with N >= 8 (default 1.5)",
    )
    parser.add_argument(
        "--strict-time",
        action="store_true",
        help="treat wall-clock regressions as failures, not warnings",
    )
    parser.add_argument(
        "--ignore-context",
        action="store_true",
        help="skip the dataset-scale context comparison",
    )
    args = parser.parse_args()

    base_ctx, base = load(args.baseline)
    cur = {}
    failures = []
    warnings = []
    for path in args.current:
        cur_ctx, cur_part = load(path)
        cur.update(cur_part)
        if not args.ignore_context and base_ctx != cur_ctx:
            failures.append(
                f"{path}: context mismatch: baseline {base_ctx} vs "
                f"{cur_ctx} (set WSK_BENCH_OBJECTS / WSK_BENCH_QUERIES to "
                "the baseline's scale, or pass --ignore-context)"
            )

    for name, base_bench in sorted(base.items()):
        if name not in cur:
            failures.append(f"{name}: present in baseline but not in current run")
            continue
        base_vals = metric_values(base_bench)
        cur_vals = metric_values(cur[name])
        for metric, base_val in sorted(base_vals.items()):
            if metric not in cur_vals:
                failures.append(f"{name}: counter `{metric}` disappeared")
                continue
            cur_val = cur_vals[metric]
            if metric in ("speedup", "cache_speedup", "decode_speedup"):
                min_ratio = {
                    "speedup": args.min_speedup,
                    "cache_speedup": args.min_cache_speedup,
                    "decode_speedup": args.min_decode_speedup,
                }[metric]
                floor = base_val / (1.0 + args.tolerance)
                if cur_val < min_ratio:
                    failures.append(
                        f"{name}: {metric} {cur_val:.2f}x below the absolute "
                        f"floor {min_ratio:.2f}x"
                    )
                elif cur_val < floor:
                    warnings.append(
                        f"{name}: {metric} fell {cur_val:.2f}x < {floor:.2f}x "
                        f"(baseline {base_val:.2f}x - {args.tolerance:.0%}; "
                        "machine-dependent ratio)"
                    )
            elif metric in HARD_LOWER_IS_BETTER:
                ceiling = base_val * (1.0 + args.tolerance)
                if cur_val > ceiling and cur_val - base_val > 1e-9:
                    failures.append(
                        f"{name}: {metric} regressed {base_val:g} -> {cur_val:g} "
                        f"(> {args.tolerance:.0%} over baseline)"
                    )
            elif metric in TIME_METRICS:
                ceiling = base_val * (1.0 + args.tolerance)
                if cur_val > ceiling:
                    msg = (
                        f"{name}: {metric} {base_val:g} -> {cur_val:g} "
                        f"(> {args.tolerance:.0%} over baseline; wall-clock)"
                    )
                    (failures if args.strict_time else warnings).append(msg)

    # Trace overhead is an absolute property of the build, not a drift from
    # the baseline: cap it for every current benchmark that reports it, even
    # before the baseline file has caught up.
    for name, bench in sorted(cur.items()):
        overhead = metric_values(bench).get("trace_overhead")
        if overhead is not None and overhead > args.max_trace_overhead:
            failures.append(
                f"{name}: trace_overhead {overhead:.2f}x exceeds the cap "
                f"{args.max_trace_overhead:.2f}x (tracing must stay cheap)"
            )

    # So is sampling: the always-on telemetry pipeline at its shipped
    # defaults must stay within a few percent of a telemetry-less service
    # on any machine (docs/OBSERVABILITY.md "Continuous telemetry").
    for name, bench in sorted(cur.items()):
        overhead = metric_values(bench).get("sampling_overhead")
        if overhead is not None and overhead > args.max_sampling_overhead:
            failures.append(
                f"{name}: sampling_overhead {overhead:.3f}x exceeds the cap "
                f"{args.max_sampling_overhead:.2f}x (always-on telemetry "
                "must stay affordable)"
            )

    # The v2 node format's two acceptance properties are absolute facts of
    # the current build, capped/floored for every benchmark that reports
    # them even before the baseline file has caught up (docs/STORAGE.md
    # "v2 node format & mmap").
    for name, bench in sorted(cur.items()):
        vals = metric_values(bench)
        decode = vals.get("decode_speedup")
        if decode is not None and decode < args.min_decode_speedup:
            failures.append(
                f"{name}: decode_speedup {decode:.2f}x below the absolute "
                f"floor {args.min_decode_speedup:.2f}x (v2+mmap must beat "
                "v1 decode)"
            )
        ratio = vals.get("v2_size_ratio")
        if ratio is not None and ratio > args.max_v2_size_ratio:
            failures.append(
                f"{name}: v2_size_ratio {ratio:.3f} exceeds the cap "
                f"{args.max_v2_size_ratio:.2f} (v2 must stay at least "
                f"{1 - args.max_v2_size_ratio:.0%} smaller than v1)"
            )

    # Cross-shard bound pruning must actually fire: on the clustered
    # service/shards workload every multi-shard topology has to skip at
    # least one shard over the whole run (docs/SHARDING.md), an absolute
    # floor independent of the baseline, like the trace-overhead cap.
    for name, bench in sorted(cur.items()):
        series = name.removesuffix("/iterations:1")
        if not series.startswith("service/shards/n:"):
            continue
        try:
            num_shards = int(series.rpartition(":")[2])
        except ValueError:
            continue
        pruned = metric_values(bench).get("shards_pruned")
        if num_shards > 1 and pruned is not None and pruned <= 0:
            failures.append(
                f"{name}: shards_pruned = 0 with {num_shards} shards — the "
                "cross-shard bound never pruned on the clustered workload"
            )

    # Batched execution must actually amortize: at batch size >= 8 the
    # service/batch series has to beat solo by the floor either in wall
    # clock (batch_speedup) or in node decodes (decode_amortization, the
    # machine-independent witness of the same reduction) — an absolute
    # property of the current run, like the trace-overhead cap
    # (docs/BATCHING.md).
    for name, bench in sorted(cur.items()):
        series = name.removesuffix("/iterations:1")
        if not series.startswith("service/batch/n:"):
            continue
        try:
            batch_n = int(series.rpartition(":")[2])
        except ValueError:
            continue
        vals = metric_values(bench)
        speedup = vals.get("batch_speedup")
        amortization = vals.get("decode_amortization")
        if batch_n < 8 or (speedup is None and amortization is None):
            continue
        best = max(v for v in (speedup, amortization) if v is not None)
        if best < args.min_batch_speedup:
            failures.append(
                f"{name}: batch_speedup {speedup or 0:.2f}x and "
                f"decode_amortization {amortization or 0:.2f}x both below "
                f"the absolute floor {args.min_batch_speedup:.2f}x at batch "
                f"size {batch_n}"
            )

    for msg in warnings:
        print(f"WARN  {msg}")
    for msg in failures:
        print(f"FAIL  {msg}")
    if not failures:
        print(
            f"OK    {len(base)} baseline benchmarks within tolerance "
            f"({len(warnings)} warnings)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
