#!/usr/bin/env python3
"""Converts the benchmark suite's console output into per-figure CSV tables.

Usage:
    for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt
    tools/bench_to_csv.py bench_output.txt out_dir/

Each bench binary prints rows named `<Algorithm>/<param>=<value>/...` with
counters avg_ms / avg_io / avg_penalty; this script groups rows by the swept
parameter and emits one CSV per parameter with one line per value and one
column group per algorithm — the exact series of the paper's figures.
"""

import collections
import csv
import os
import re
import sys

ROW = re.compile(
    r"^(?P<name>\S+)/iterations:1\s.*?"
    r"avg_io=(?P<io>[\d.]+[kMG]?)\s+"
    r"avg_ms=(?P<ms>[\d.]+[kMG]?)\s+"
    r"avg_penalty=(?P<penalty>[\d.]+[kMG]?)")

SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}


def parse_number(text: str) -> float:
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    source, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    # tables[param][value][algorithm] = (ms, io, penalty)
    tables = collections.defaultdict(dict)
    with open(source) as lines:
        for line in lines:
            match = ROW.match(line.strip())
            if not match:
                continue
            parts = match.group("name").split("/")
            if len(parts) < 2 or "=" not in parts[-1]:
                continue
            algorithm = "/".join(parts[:-1])
            param, _, value = parts[-1].partition("=")
            cell = (parse_number(match.group("ms")),
                    parse_number(match.group("io")),
                    parse_number(match.group("penalty")))
            tables[param].setdefault(value, {})[algorithm] = cell

    for param, values in tables.items():
        algorithms = sorted({a for row in values.values() for a in row})
        path = os.path.join(out_dir, f"{param}.csv")
        with open(path, "w", newline="") as out:
            writer = csv.writer(out)
            header = [param]
            for algorithm in algorithms:
                safe = algorithm.replace("/", "_")
                header += [f"{safe}_ms", f"{safe}_io", f"{safe}_penalty"]
            writer.writerow(header)
            for value, row in values.items():
                line = [value]
                for algorithm in algorithms:
                    cell = row.get(algorithm)
                    line += list(cell) if cell else ["", "", ""]
                writer.writerow(line)
        print(f"wrote {path} ({len(values)} rows x {len(algorithms)} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
