#!/usr/bin/env python3
"""Converts the benchmark suite's output into per-figure CSV tables.

Usage:
    for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt
    tools/bench_to_csv.py bench_output.txt out_dir/

    build/bench/bench_optimizations --json opts.json
    tools/bench_to_csv.py opts.json out_dir/

Accepts either the console text of the bench binaries or the
machine-readable file written by their --json flag (auto-detected by the
leading '{'). Each why-not row is named `<Algorithm>/<param>=<value>`;
rows are grouped by the swept parameter and one CSV per parameter is
emitted, with one line per value and one column group per algorithm — the
exact series of the paper's figures. Beyond the paper's avg_ms / avg_io /
avg_penalty, each group carries the pruning-effectiveness counters
(cand_eval, cand_filtered, cand_skipped, cand_pruned, nodes_expanded)
whenever the run reports them (docs/OBSERVABILITY.md).

Node-format rows (bench_index_micro's `node_decode/...`) land in
`node_format.csv` with the v1-vs-v2 decode timings, file sizes, and the
two gated ratios (decode_speedup, v2_size_ratio — docs/STORAGE.md "v2
node format & mmap").

Service-layer rows (bench_service) are named `service/<series>/<key>:<value>`
and carry throughput counters instead of per-query figures; each series
lands in its own `service_<series>.csv` with whichever of qps / p50_ms /
p99_ms / cache_hit_rate / insert_rate / merges / shards_visited /
shards_pruned / pruned_rate / batch_speedup / decode_amortization / dedup
the run reports (the shard counters come from the service/shards series,
docs/SHARDING.md; the batch counters from the service/batch batched-
execution series, docs/BATCHING.md).
"""

import collections
import csv
import json
import os
import re
import sys

ROW = re.compile(r"^(?P<name>\S+)/iterations:1\s")
COUNTER = re.compile(r"([A-Za-z_][\w]*)=(-?[\d.]+(?:e[+-]?\d+)?[kMG]?)")

SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}
# Column order within one algorithm's group; the paper metrics always
# appear, the pruning counters only when at least one row reports them.
BASE_COLUMNS = ("avg_ms", "avg_io", "avg_penalty")
PRUNE_COLUMNS = ("cand_eval", "cand_filtered", "cand_skipped",
                 "cand_pruned", "nodes_expanded")
# Service-series columns (bench_service), in report order; only the ones a
# run actually carries are emitted.
SERVICE_COLUMNS = ("qps", "p50_ms", "p99_ms", "cache_hit_rate",
                   "insert_rate", "merges", "shards_visited",
                   "shards_pruned", "pruned_rate", "batch_speedup",
                   "decode_amortization", "dedup")
# node_decode/... rows (bench_index_micro), in report order.
NODE_FORMAT_COLUMNS = ("v1_decode_ns", "v2_decode_ns", "v2_mmap_decode_ns",
                       "decode_speedup", "v1_bytes", "v2_bytes",
                       "v2_size_ratio", "v2_mapped_reads",
                       "v2_physical_reads")


def parse_number(text: str) -> float:
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def load_rows(source):
    """Yields (benchmark_name, {counter: value}) from either input kind."""
    with open(source) as f:
        head = f.read(1)
    if head == "{":
        with open(source) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            name = bench.get("name", "")
            name = name.removesuffix("/iterations:1")
            counters = {
                k: float(v)
                for k, v in bench.get("counters", {}).items()
                if isinstance(v, (int, float))
            }
            yield name, counters
        return
    with open(source) as lines:
        for line in lines:
            match = ROW.match(line.strip())
            if not match:
                continue
            counters = {
                k: parse_number(v) for k, v in COUNTER.findall(line)
            }
            yield match.group("name"), counters


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    source, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    # tables[param][value][algorithm] = {counter: value}
    tables = collections.defaultdict(dict)
    # service[series] = (key, {value: {counter: value}}) for
    # `service/<series>/<key>:<value>` rows.
    service = collections.OrderedDict()
    # node_format[scope] = {counter: value} for `node_decode/<scope>` rows.
    node_format = collections.OrderedDict()
    for name, counters in load_rows(source):
        parts = name.split("/")
        if parts[0] == "node_decode":
            node_format["/".join(parts[1:]) or "all"] = counters
            continue
        if name.startswith("service/") and ":" in parts[-1]:
            series = "/".join(parts[1:-1]) or "service"
            key, _, value = parts[-1].partition(":")
            service.setdefault(series, (key, collections.OrderedDict()))
            service[series][1][value] = counters
            continue
        if "avg_ms" not in counters:
            continue  # microbenchmark rows have no figure to land in
        if len(parts) < 2 or "=" not in parts[-1]:
            continue
        algorithm = "/".join(parts[:-1])
        param, _, value = parts[-1].partition("=")
        tables[param].setdefault(value, {})[algorithm] = counters

    for param, values in tables.items():
        algorithms = sorted({a for row in values.values() for a in row})
        present = {
            c for row in values.values() for cell in row.values()
            for c in cell
        }
        columns = list(BASE_COLUMNS) + [
            c for c in PRUNE_COLUMNS if c in present
        ]
        path = os.path.join(out_dir, f"{param}.csv")
        with open(path, "w", newline="") as out:
            writer = csv.writer(out)
            header = [param]
            for algorithm in algorithms:
                safe = algorithm.replace("/", "_")
                header += [
                    f"{safe}_{c.removeprefix('avg_')}" for c in columns
                ]
            writer.writerow(header)
            for value, row in values.items():
                line = [value]
                for algorithm in algorithms:
                    cell = row.get(algorithm, {})
                    line += [cell.get(c, "") for c in columns]
                writer.writerow(line)
        print(f"wrote {path} ({len(values)} rows x {len(algorithms)} series)")

    for series, (key, rows) in service.items():
        present = {c for cell in rows.values() for c in cell}
        columns = [c for c in SERVICE_COLUMNS if c in present]
        safe = series.replace("/", "_")
        path = os.path.join(out_dir, f"service_{safe}.csv")
        with open(path, "w", newline="") as out:
            writer = csv.writer(out)
            writer.writerow([key] + columns)
            for value, cell in rows.items():
                writer.writerow([value] + [cell.get(c, "") for c in columns])
        print(f"wrote {path} ({len(rows)} rows)")

    if node_format:
        present = {c for cell in node_format.values() for c in cell}
        columns = [c for c in NODE_FORMAT_COLUMNS if c in present]
        path = os.path.join(out_dir, "node_format.csv")
        with open(path, "w", newline="") as out:
            writer = csv.writer(out)
            writer.writerow(["scope"] + columns)
            for scope, cell in node_format.items():
                writer.writerow([scope] + [cell.get(c, "") for c in columns])
        print(f"wrote {path} ({len(node_format)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
