#!/usr/bin/env python3
"""Checks for the benchmark post-processing tools (stdlib unittest only).

Covers the two report generators (bench_to_csv, bench_to_markdown) on both
input kinds — bench console text and the `--json` machine format — with
the pruning-effectiveness counters of docs/OBSERVABILITY.md, plus the
trace-overhead cap in check_bench_regression.

Run directly (tools/test_bench_tools.py) or through ctest
(`ctest -R bench_tools_py`).
"""

import csv
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOLS_DIR)

import bench_to_csv  # noqa: E402

CONSOLE_SAMPLE = """\
Run on (8 X 4800 MHz CPU s)
-------------------------------------------------------------------
Benchmark                         Time             CPU   Iterations
-------------------------------------------------------------------
AdvancedBS/k0=10/iterations:1  12.1 ms     12.0 ms     1 avg_io=118 \
avg_ms=6.05 avg_penalty=0.012 cand_eval=31 cand_filtered=12 \
cand_pruned=140 cand_skipped=72 nodes_expanded=1.2k
KcRBased/k0=10/iterations:1    8.4 ms      8.3 ms      1 avg_io=90 \
avg_ms=4.2 avg_penalty=0.012 cand_eval=18 cand_filtered=0 \
cand_pruned=165 cand_skipped=72 nodes_expanded=800
BS/k0=10/iterations:1          80 ms       79 ms       1 avg_io=300 \
avg_ms=40 avg_penalty=0.012 cand_eval=255 cand_filtered=0 \
cand_pruned=0 cand_skipped=0 nodes_expanded=5k
service/mixed/workers:2/iterations:1  17.4 ms  0.38 ms  1 \
cache_hit_rate=0.5 p50_ms=16.384 p99_ms=32.768 qps=4.66718k
service/ingest/merge:on/iterations:1  50.3 ms  7.96 ms  1 \
insert_rate=19.5094k merges=3 p99_ms=32.768
service/ingest/merge:off/iterations:1 17.4 ms  5.52 ms  1 \
insert_rate=41.2772k merges=0 p99_ms=16.384
service/shards/n:1/iterations:1  40.0 ms  1.2 ms  1 \
p50_ms=4.096 p99_ms=8.192 pruned_rate=0 qps=3.2k shards_pruned=0 \
shards_visited=128
service/shards/n:4/iterations:1  25.0 ms  1.1 ms  1 \
p50_ms=2.048 p99_ms=4.096 pruned_rate=0.75 qps=5.12k shards_pruned=384 \
shards_visited=128
service/batch/n:1/iterations:1  64.3 ms  0.56 ms  1 \
batch_speedup=1 decode_amortization=1 dedup=0 p50_ms=65.536 \
p99_ms=65.536 qps=3.0017k
service/batch/n:8/iterations:1  109 ms  0.9 ms  1 \
batch_speedup=1.2 decode_amortization=1.83 dedup=23 p50_ms=32.768 \
p99_ms=65.536 qps=3.91831k
node_decode/all/iterations:1  114 ms  114 ms  1 decode_speedup=1.89 \
v1_bytes=1.71622M v1_decode_ns=2.23759M v2_bytes=602.112k \
v2_decode_ns=1.3317M v2_mapped_reads=12.226k v2_mmap_decode_ns=1.18395M \
v2_physical_reads=0 v2_size_ratio=0.35
"""

JSON_SAMPLE = {
    "context": {"objects": 6000, "queries_per_point": 2},
    "benchmarks": [
        {
            "name": "AdvancedBS/k0=10/iterations:1",
            "iterations": 1,
            "ns_per_op": 1.21e7,
            "counters": {
                "avg_io": 118.0,
                "avg_ms": 6.05,
                "avg_penalty": 0.012,
                "cand_eval": 31.0,
                "cand_filtered": 12.0,
                "cand_pruned": 140.0,
                "cand_skipped": 72.0,
                "nodes_expanded": 1200.0,
            },
        },
        {
            "name": "TraceOverhead/AdvancedBS/iterations:1",
            "iterations": 1,
            "ns_per_op": 2.0e8,
            "counters": {
                "untraced_ms": 95.0,
                "traced_ms": 100.0,
                "trace_overhead": 1.05,
            },
        },
        {
            "name": "service/ingest/merge:on/iterations:1",
            "iterations": 1,
            "ns_per_op": 5.03e7,
            "counters": {
                "insert_rate": 19509.4,
                "merges": 3.0,
                "p99_ms": 32.768,
            },
        },
        {
            "name": "service/shards/n:4/iterations:1",
            "iterations": 1,
            "ns_per_op": 2.5e7,
            "counters": {
                "qps": 5120.0,
                "p50_ms": 2.048,
                "p99_ms": 4.096,
                "shards_visited": 128.0,
                "shards_pruned": 384.0,
                "pruned_rate": 0.75,
            },
        },
        {
            "name": "service/batch/n:8/iterations:1",
            "iterations": 1,
            "ns_per_op": 1.09e8,
            "counters": {
                "qps": 3918.31,
                "p50_ms": 32.768,
                "p99_ms": 65.536,
                "batch_speedup": 1.2,
                "decode_amortization": 1.83,
                "dedup": 23.0,
            },
        },
        {
            "name": "node_decode/all/iterations:1",
            "iterations": 1,
            "ns_per_op": 1.14e8,
            "counters": {
                "v1_decode_ns": 2237590.0,
                "v2_decode_ns": 1331700.0,
                "v2_mmap_decode_ns": 1183950.0,
                "decode_speedup": 1.89,
                "v1_bytes": 1716220.0,
                "v2_bytes": 602112.0,
                "v2_size_ratio": 0.35,
                "v2_mapped_reads": 12226.0,
                "v2_physical_reads": 0.0,
            },
        },
        {
            "name": "service/telemetry/sampling/iterations:1",
            "iterations": 1,
            "ns_per_op": 9.1e7,
            "counters": {
                "disabled_ms": 88.0,
                "enabled_ms": 90.0,
                "sampling_overhead": 1.023,
                "qps": 4100.0,
            },
        },
    ],
}


def run_tool(script, *argv, expect_rc=0):
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS_DIR, script), *argv],
        capture_output=True,
        text=True,
    )
    if expect_rc is not None and proc.returncode != expect_rc:
        raise AssertionError(
            f"{script} {' '.join(argv)} exited {proc.returncode}:\n"
            f"{proc.stdout}{proc.stderr}"
        )
    return proc


class LoadRowsTest(unittest.TestCase):
    def test_console_rows_carry_all_counters(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            rows = dict(bench_to_csv.load_rows(src))
        self.assertIn("AdvancedBS/k0=10", rows)
        adv = rows["AdvancedBS/k0=10"]
        self.assertEqual(adv["cand_filtered"], 12.0)
        self.assertEqual(adv["nodes_expanded"], 1200.0)  # k suffix
        self.assertEqual(adv["avg_ms"], 6.05)

    def test_json_rows_match_console_rows(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench.json")
            with open(src, "w") as f:
                json.dump(JSON_SAMPLE, f)
            rows = dict(bench_to_csv.load_rows(src))
        self.assertEqual(rows["AdvancedBS/k0=10"]["cand_pruned"], 140.0)
        self.assertEqual(
            rows["TraceOverhead/AdvancedBS"]["trace_overhead"], 1.05
        )


class BenchToCsvTest(unittest.TestCase):
    def test_emits_pruning_columns(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "k0.csv")) as f:
                table = list(csv.reader(f))
        header, row = table[0], table[1]
        # Paper metrics stay first in each algorithm group...
        self.assertIn("AdvancedBS_ms", header)
        self.assertIn("AdvancedBS_io", header)
        self.assertIn("AdvancedBS_penalty", header)
        # ...and the disposition partition rides along per algorithm.
        for counter in ("cand_eval", "cand_filtered", "cand_skipped",
                        "cand_pruned", "nodes_expanded"):
            self.assertIn(f"AdvancedBS_{counter}", header)
        self.assertEqual(row[header.index("k0")], "10")
        self.assertEqual(
            float(row[header.index("KcRBased_cand_pruned")]), 165.0
        )

    def test_emits_service_series_csvs(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "service_mixed.csv")) as f:
                mixed = list(csv.reader(f))
            with open(os.path.join(out_dir, "service_ingest.csv")) as f:
                ingest = list(csv.reader(f))
        self.assertEqual(
            mixed[0], ["workers", "qps", "p50_ms", "p99_ms",
                       "cache_hit_rate"])
        self.assertEqual(mixed[1][0], "2")
        self.assertEqual(float(mixed[1][1]), 4667.18)
        header, on_row, off_row = ingest[0], ingest[1], ingest[2]
        self.assertEqual(header, ["merge", "p99_ms", "insert_rate",
                                  "merges"])
        self.assertEqual(on_row[0], "on")
        self.assertEqual(float(on_row[header.index("merges")]), 3.0)
        self.assertEqual(float(off_row[header.index("merges")]), 0.0)

    def test_emits_shard_series_csv(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "service_shards.csv")) as f:
                shards = list(csv.reader(f))
        header = shards[0]
        self.assertEqual(header, ["n", "qps", "p50_ms", "p99_ms",
                                  "shards_visited", "shards_pruned",
                                  "pruned_rate"])
        one, four = shards[1], shards[2]
        self.assertEqual(one[0], "1")
        self.assertEqual(float(one[header.index("shards_pruned")]), 0.0)
        self.assertEqual(four[0], "4")
        self.assertEqual(float(four[header.index("shards_pruned")]), 384.0)
        self.assertEqual(float(four[header.index("pruned_rate")]), 0.75)

    def test_emits_batch_series_csv(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "service_batch.csv")) as f:
                batch = list(csv.reader(f))
        header = batch[0]
        self.assertEqual(header, ["n", "qps", "p50_ms", "p99_ms",
                                  "batch_speedup", "decode_amortization",
                                  "dedup"])
        one, eight = batch[1], batch[2]
        self.assertEqual(one[0], "1")
        self.assertEqual(float(one[header.index("batch_speedup")]), 1.0)
        self.assertEqual(eight[0], "8")
        self.assertEqual(
            float(eight[header.index("decode_amortization")]), 1.83)
        self.assertEqual(float(eight[header.index("dedup")]), 23.0)

    def test_emits_node_format_csv(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "node_format.csv")) as f:
                table = list(csv.reader(f))
        header, row = table[0], table[1]
        self.assertEqual(header, ["scope", "v1_decode_ns", "v2_decode_ns",
                                  "v2_mmap_decode_ns", "decode_speedup",
                                  "v1_bytes", "v2_bytes", "v2_size_ratio",
                                  "v2_mapped_reads", "v2_physical_reads"])
        self.assertEqual(row[0], "all")
        self.assertEqual(float(row[header.index("decode_speedup")]), 1.89)
        self.assertEqual(float(row[header.index("v2_size_ratio")]), 0.35)
        self.assertEqual(float(row[header.index("v2_bytes")]), 602112.0)

    def test_json_input_produces_same_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench.json")
            with open(src, "w") as f:
                json.dump(JSON_SAMPLE, f)
            out_dir = os.path.join(tmp, "csv")
            run_tool("bench_to_csv.py", src, out_dir)
            with open(os.path.join(out_dir, "k0.csv")) as f:
                table = list(csv.reader(f))
        header = table[0]
        self.assertIn("AdvancedBS_cand_filtered", header)
        self.assertEqual(
            float(table[1][header.index("AdvancedBS_cand_filtered")]), 12.0
        )


class BenchToMarkdownTest(unittest.TestCase):
    def test_renders_pruning_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### sweep: k0", out)
        self.assertIn("### pruning: k0", out)
        self.assertIn("cand_filtered", out)
        # The unoptimized baseline row shows everything evaluated.
        self.assertIn("| 10 | BS | 255 | 0 | 0 | 0 |", out)

    def test_renders_service_tables(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### service: mixed", out)
        self.assertIn("### service: ingest", out)
        self.assertIn("| workers | qps | p50_ms | p99_ms |"
                      " cache_hit_rate |", out)
        self.assertIn("| merge | p99_ms | insert_rate | merges |", out)
        self.assertIn("| on | 32.8 | 19,509 | 3 |", out)
        self.assertIn("| off | 16.4 | 41,277 | 0 |", out)

    def test_renders_shard_series_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### service: shards", out)
        self.assertIn("| n | qps | p50_ms | p99_ms | shards_visited |"
                      " shards_pruned | pruned_rate |", out)
        # Counts render as integers, pruned_rate like cache_hit_rate.
        self.assertIn("| 1 | 3,200 | 4.1 | 8.2 | 128 | 0 | 0.00 |", out)
        self.assertIn("| 4 | 5,120 | 2.0 | 4.1 | 128 | 384 | 0.75 |", out)

    def test_renders_batch_series_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### service: batch", out)
        self.assertIn("| n | qps | p50_ms | p99_ms | batch_speedup |"
                      " decode_amortization | dedup |", out)
        # Ratios render with two decimals, dedup as an integer count.
        self.assertIn("| 1 | 3,002 | 65.5 | 65.5 | 1.00 | 1.00 | 0 |", out)
        self.assertIn("| 8 | 3,918 | 32.8 | 65.5 | 1.20 | 1.83 | 23 |", out)

    def test_renders_node_format_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench_output.txt")
            with open(src, "w") as f:
                f.write(CONSOLE_SAMPLE)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### node format: v1 vs v2 (full-tree decode)", out)
        self.assertIn("| scope | v1_decode_ns | v2_decode_ns |"
                      " v2_mmap_decode_ns | decode_speedup | v1_bytes |"
                      " v2_bytes | v2_size_ratio |", out)
        # Ratios render with two decimals, the rest as counts.
        self.assertIn("| all | 2,237,590 | 1,331,700 | 1,183,950 | 1.89 |"
                      " 1,716,220 | 602,112 | 0.35 |", out)

    def test_json_service_rows_render(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "bench.json")
            with open(src, "w") as f:
                json.dump(JSON_SAMPLE, f)
            out = run_tool("bench_to_markdown.py", src).stdout
        self.assertIn("### service: ingest", out)
        self.assertIn("| on | 32.8 | 19,509 | 3 |", out)


class TraceOverheadGateTest(unittest.TestCase):
    def _check(self, overhead, expect_rc):
        sample = json.loads(json.dumps(JSON_SAMPLE))
        sample["benchmarks"][1]["counters"]["trace_overhead"] = overhead
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "kernels.json")
            with open(path, "w") as f:
                json.dump(sample, f)
            # Self-comparison applies only the absolute gates, exactly as
            # the CI trace-overhead step invokes the checker.
            return run_tool(
                "check_bench_regression.py", path, path,
                expect_rc=expect_rc,
            )

    def test_overhead_below_cap_passes(self):
        self._check(1.2, expect_rc=0)

    def test_overhead_above_cap_fails(self):
        proc = self._check(2.1, expect_rc=1)
        self.assertIn("trace_overhead", proc.stdout)


class SamplingOverheadGateTest(unittest.TestCase):
    """sampling_overhead caps the cost of always-on telemetry at the default
    sampling rate — an absolute gate like trace_overhead, but tighter."""

    def _check(self, overhead, expect_rc, *extra):
        sample = json.loads(json.dumps(JSON_SAMPLE))
        sample["benchmarks"][6]["counters"]["sampling_overhead"] = overhead
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "service.json")
            with open(path, "w") as f:
                json.dump(sample, f)
            return run_tool(
                "check_bench_regression.py", path, path, *extra,
                expect_rc=expect_rc,
            )

    def test_overhead_below_cap_passes(self):
        self._check(1.02, expect_rc=0)

    def test_overhead_above_cap_fails(self):
        proc = self._check(1.2, expect_rc=1)
        self.assertIn("sampling_overhead", proc.stdout)

    def test_cap_is_adjustable(self):
        self._check(1.2, 0, "--max-sampling-overhead", "1.3")


class ShardPruningGateTest(unittest.TestCase):
    """shards_pruned must stay positive on every multi-shard series row —
    an absolute floor, applied to the current run like the overhead cap."""

    def _check(self, pruned, expect_rc, shards=4):
        sample = json.loads(json.dumps(JSON_SAMPLE))
        shard_bench = sample["benchmarks"][3]
        shard_bench["name"] = f"service/shards/n:{shards}/iterations:1"
        shard_bench["counters"]["shards_pruned"] = pruned
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "service.json")
            with open(path, "w") as f:
                json.dump(sample, f)
            return run_tool(
                "check_bench_regression.py", path, path,
                expect_rc=expect_rc,
            )

    def test_positive_pruning_passes(self):
        self._check(384.0, expect_rc=0)

    def test_zero_pruning_fails(self):
        proc = self._check(0.0, expect_rc=1)
        self.assertIn("shards_pruned", proc.stdout)

    def test_single_shard_exempt(self):
        # n:1 has nothing to prune; the floor only applies beyond one shard.
        self._check(0.0, expect_rc=0, shards=1)


class BatchSpeedupGateTest(unittest.TestCase):
    """max(batch_speedup, decode_amortization) must clear the absolute
    floor at batch size >= 8 — either wall-clock or the machine-independent
    node-decode reduction may satisfy it (docs/BATCHING.md)."""

    def _check(self, speedup, amortization, expect_rc, batch_n=8):
        sample = json.loads(json.dumps(JSON_SAMPLE))
        batch_bench = sample["benchmarks"][4]
        batch_bench["name"] = f"service/batch/n:{batch_n}/iterations:1"
        batch_bench["counters"]["batch_speedup"] = speedup
        batch_bench["counters"]["decode_amortization"] = amortization
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "service.json")
            with open(path, "w") as f:
                json.dump(sample, f)
            return run_tool(
                "check_bench_regression.py", path, path,
                expect_rc=expect_rc,
            )

    def test_amortization_clears_floor_despite_flat_wall_clock(self):
        # Single-core CI: wall clock barely moves but decodes amortize.
        self._check(1.05, 1.83, expect_rc=0)

    def test_wall_clock_clears_floor_despite_flat_amortization(self):
        self._check(2.1, 1.1, expect_rc=0)

    def test_both_below_floor_fails(self):
        proc = self._check(1.1, 1.2, expect_rc=1)
        self.assertIn("decode_amortization", proc.stdout)

    def test_small_batches_exempt(self):
        # The 1.5x promise is made at batch size 8 (docs/BATCHING.md);
        # shallow batches amortize less and are not gated.
        self._check(1.0, 1.1, expect_rc=0, batch_n=4)


class NodeFormatGateTest(unittest.TestCase):
    """decode_speedup is floored and v2_size_ratio capped absolutely on
    the current run (docs/STORAGE.md "v2 node format & mmap"), like the
    trace-overhead cap."""

    def _check(self, speedup, size_ratio, expect_rc):
        sample = json.loads(json.dumps(JSON_SAMPLE))
        decode_bench = sample["benchmarks"][5]
        assert decode_bench["name"].startswith("node_decode/")
        decode_bench["counters"]["decode_speedup"] = speedup
        decode_bench["counters"]["v2_size_ratio"] = size_ratio
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "micro.json")
            with open(path, "w") as f:
                json.dump(sample, f)
            return run_tool(
                "check_bench_regression.py", path, path,
                expect_rc=expect_rc,
            )

    def test_healthy_format_passes(self):
        self._check(1.89, 0.35, expect_rc=0)

    def test_decode_speedup_below_floor_fails(self):
        proc = self._check(1.1, 0.35, expect_rc=1)
        self.assertIn("decode_speedup", proc.stdout)

    def test_size_ratio_above_cap_fails(self):
        proc = self._check(1.89, 0.85, expect_rc=1)
        self.assertIn("v2_size_ratio", proc.stdout)


if __name__ == "__main__":
    unittest.main()
