#!/usr/bin/env python3
"""Renders benchmark suite output as the markdown tables EXPERIMENTS.md uses.

Usage: tools/bench_to_markdown.py bench_output.txt
"""

import collections
import re
import sys

ROW = re.compile(
    r"^(?P<name>\S+)/iterations:1\s.*?"
    r"avg_io=(?P<io>[\d.]+[kMG]?)\s+"
    r"avg_ms=(?P<ms>[\d.]+[kMG]?)\s+"
    r"avg_penalty=(?P<penalty>[\d.]+[kMG]?)")
MICRO = re.compile(
    r"^(?P<name>topk/\S+)/iterations:1\s+(?P<ms>[\d.]+) ms\s.*?"
    r"avg_io=(?P<io>[\d.]+[kMG]?)")

SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}


def num(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def fmt(value, digits=1):
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    # tables[param] -> ordered {value: {algorithm: (ms, io, penalty)}}
    tables = collections.defaultdict(lambda: collections.OrderedDict())
    micro = collections.OrderedDict()
    with open(path) as lines:
        for line in lines:
            line = line.strip()
            m = MICRO.match(line)
            if m and "avg_penalty" not in line:
                micro[m.group("name")] = (float(m.group("ms")) / 20.0,
                                          num(m.group("io")))
                continue
            m = ROW.match(line)
            if not m:
                continue
            parts = m.group("name").split("/")
            if "=" not in parts[-1]:
                continue
            algorithm = "/".join(parts[:-1])
            param, _, value = parts[-1].partition("=")
            cell = (num(m.group("ms")), num(m.group("io")),
                    num(m.group("penalty")))
            tables[param].setdefault(value, collections.OrderedDict())
            tables[param][value][algorithm] = cell

    for param, values in tables.items():
        algorithms = []
        for row in values.values():
            for a in row:
                if a not in algorithms:
                    algorithms.append(a)
        print(f"### sweep: {param}\n")
        header = f"| {param} |"
        divider = "|---|"
        for a in algorithms:
            header += f" {a} ms | {a} I/O |"
            divider += "---|---|"
        header += " penalty |"
        divider += "---|"
        print(header)
        print(divider)
        for value, row in values.items():
            line = f"| {value} |"
            penalty = ""
            for a in algorithms:
                cell = row.get(a)
                if cell:
                    line += f" {fmt(cell[0])} | {fmt(cell[1], 0)} |"
                    penalty = f"{cell[2]:.3f}"
                else:
                    line += " — | — |"
            line += f" {penalty} |"
            print(line)
        print()

    if micro:
        print("### substrate micro-benchmark (per-query)\n")
        print("| source | ms/query | pages/query |")
        print("|---|---|---|")
        for name, (ms, io) in micro.items():
            print(f"| {name} | {ms:.2f} | {fmt(io, 1)} |")
        print()


if __name__ == "__main__":
    main()
