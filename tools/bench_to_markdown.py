#!/usr/bin/env python3
"""Renders benchmark suite output as the markdown tables EXPERIMENTS.md uses.

Usage:
    tools/bench_to_markdown.py bench_output.txt
    tools/bench_to_markdown.py opts.json        # from `bench_* --json`

Accepts either the console text of the bench binaries or the file written
by their --json flag (auto-detected by the leading '{'). Each sweep gets
the paper's ms / I/O / penalty table; when a run reports the
pruning-effectiveness counters (docs/OBSERVABILITY.md), a second table
per sweep breaks the candidate dispositions down by algorithm.

Node-format rows (bench_index_micro's `node_decode/...`) get a v1-vs-v2
table with the decode timings, file sizes, and the two gated ratios
(docs/STORAGE.md "v2 node format & mmap").

Service-layer rows (bench_service, `service/<series>/<key>:<value>`) get
one table per series with whichever of qps / p50_ms / p99_ms /
cache_hit_rate / insert_rate / merges / shards_visited / shards_pruned /
pruned_rate / batch_speedup / decode_amortization / dedup the run carries
(the shard counters come from the service/shards sharding series,
docs/SHARDING.md; the batch counters from the service/batch batched-
execution series, docs/BATCHING.md).
"""

import collections
import json
import re
import sys

ROW = re.compile(r"^(?P<name>\S+)/iterations:1\s")
MICRO = re.compile(r"^(?P<name>topk/\S+)/iterations:1\s+(?P<ms>[\d.]+) ms\s")
COUNTER = re.compile(r"([A-Za-z_][\w]*)=(-?[\d.]+(?:e[+-]?\d+)?[kMG]?)")

SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}
PRUNE_COLUMNS = ("cand_eval", "cand_filtered", "cand_skipped",
                 "cand_pruned", "nodes_expanded")
SERVICE_COLUMNS = ("qps", "p50_ms", "p99_ms", "cache_hit_rate",
                   "insert_rate", "merges", "shards_visited",
                   "shards_pruned", "pruned_rate", "batch_speedup",
                   "decode_amortization", "dedup")
NODE_FORMAT_COLUMNS = ("v1_decode_ns", "v2_decode_ns", "v2_mmap_decode_ns",
                       "decode_speedup", "v1_bytes", "v2_bytes",
                       "v2_size_ratio")


def num(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def fmt(value, digits=1):
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def load_rows(path):
    """Yields (benchmark_name, {counter: value}); console ms rides along as
    the pseudo-counter `_console_ms` for the micro table."""
    with open(path) as f:
        head = f.read(1)
    if head == "{":
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            name = bench.get("name", "").removesuffix("/iterations:1")
            counters = {
                k: float(v)
                for k, v in bench.get("counters", {}).items()
                if isinstance(v, (int, float))
            }
            counters["_console_ms"] = bench.get("ns_per_op", 0.0) / 1e6
            yield name, counters
        return
    with open(path) as lines:
        for line in lines:
            line = line.strip()
            match = ROW.match(line)
            if not match:
                continue
            counters = {k: num(v) for k, v in COUNTER.findall(line)}
            micro = MICRO.match(line)
            if micro:
                counters["_console_ms"] = float(micro.group("ms"))
            yield match.group("name"), counters


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    # tables[param] -> ordered {value: {algorithm: {counter: value}}}
    tables = collections.defaultdict(collections.OrderedDict)
    micro = collections.OrderedDict()
    # service[series] = (key, {value: counters})
    service = collections.OrderedDict()
    node_format = collections.OrderedDict()
    for name, counters in load_rows(path):
        if name.startswith("node_decode/"):
            node_format[name.removeprefix("node_decode/")] = counters
            continue
        if name.startswith("topk/") and "avg_penalty" not in counters:
            micro[name] = (counters.get("_console_ms", 0.0) / 20.0,
                           counters.get("avg_io", 0.0))
            continue
        if name.startswith("service/") and ":" in name.split("/")[-1]:
            parts = name.split("/")
            series = "/".join(parts[1:-1]) or "service"
            key, _, value = parts[-1].partition(":")
            service.setdefault(series, (key, collections.OrderedDict()))
            service[series][1][value] = counters
            continue
        if "avg_ms" not in counters:
            continue
        parts = name.split("/")
        if "=" not in parts[-1]:
            continue
        algorithm = "/".join(parts[:-1])
        param, _, value = parts[-1].partition("=")
        tables[param].setdefault(value, collections.OrderedDict())
        tables[param][value][algorithm] = counters

    for param, values in tables.items():
        algorithms = []
        for row in values.values():
            for a in row:
                if a not in algorithms:
                    algorithms.append(a)
        print(f"### sweep: {param}\n")
        header = f"| {param} |"
        divider = "|---|"
        for a in algorithms:
            header += f" {a} ms | {a} I/O |"
            divider += "---|---|"
        header += " penalty |"
        divider += "---|"
        print(header)
        print(divider)
        for value, row in values.items():
            line = f"| {value} |"
            penalty = ""
            for a in algorithms:
                cell = row.get(a)
                if cell:
                    line += f" {fmt(cell['avg_ms'])} |"
                    line += f" {fmt(cell.get('avg_io', 0.0), 0)} |"
                    penalty = f"{cell.get('avg_penalty', 0.0):.3f}"
                else:
                    line += " — | — |"
            line += f" {penalty} |"
            print(line)
        print()

        # Candidate dispositions, one row per (value, algorithm), only when
        # the run carries the counters (older logs simply skip the table).
        has_prune = any(
            c in cell
            for row in values.values()
            for cell in row.values()
            for c in PRUNE_COLUMNS
        )
        if not has_prune:
            continue
        print(f"### pruning: {param}\n")
        print("| " + param + " | algorithm | " +
              " | ".join(PRUNE_COLUMNS) + " |")
        print("|---|---|" + "---|" * len(PRUNE_COLUMNS))
        for value, row in values.items():
            for a, cell in row.items():
                if not any(c in cell for c in PRUNE_COLUMNS):
                    continue
                cols = " | ".join(
                    fmt(cell.get(c, 0.0), 0) for c in PRUNE_COLUMNS)
                print(f"| {value} | {a} | {cols} |")
        print()

    for series, (key, rows) in service.items():
        present = {c for cell in rows.values() for c in cell}
        columns = [c for c in SERVICE_COLUMNS if c in present]
        if not columns:
            continue
        print(f"### service: {series}\n")
        print("| " + key + " | " + " | ".join(columns) + " |")
        print("|---|" + "---|" * len(columns))
        for value, cell in rows.items():
            cols = []
            for c in columns:
                v = cell.get(c, 0.0)
                if c in ("cache_hit_rate", "pruned_rate", "batch_speedup",
                         "decode_amortization"):
                    cols.append(f"{v:.2f}")
                elif c in ("merges", "shards_visited", "shards_pruned",
                           "dedup"):
                    cols.append(fmt(v, 0))
                else:
                    cols.append(fmt(v))
            print(f"| {value} | " + " | ".join(cols) + " |")
        print()

    if node_format:
        print("### node format: v1 vs v2 (full-tree decode)\n")
        columns = [c for c in NODE_FORMAT_COLUMNS
                   if any(c in cell for cell in node_format.values())]
        print("| scope | " + " | ".join(columns) + " |")
        print("|---|" + "---|" * len(columns))
        for scope, cell in node_format.items():
            cols = []
            for c in columns:
                v = cell.get(c, 0.0)
                if c in ("decode_speedup", "v2_size_ratio"):
                    cols.append(f"{v:.2f}")
                else:
                    cols.append(fmt(v, 0))
            print(f"| {scope} | " + " | ".join(cols) + " |")
        print()

    if micro:
        print("### substrate micro-benchmark (per-query)\n")
        print("| source | ms/query | pages/query |")
        print("|---|---|---|")
        for name, (ms, io) in micro.items():
            print(f"| {name} | {ms:.2f} | {fmt(io, 1)} |")


if __name__ == "__main__":
    main()
